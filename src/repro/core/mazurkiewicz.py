"""Mazurkiewicz trace theory utilities (§4).

These are primarily *test oracles*: on small programs we enumerate the
language, group words into equivalence classes, and check reductions for
soundness (≥ 1 representative per class), minimality (exactly one), and
canonicity (the representative is the lex(⋖)-minimal class member).

Two words are Mazurkiewicz-equivalent iff one can be rewritten into the
other by swapping adjacent commuting letters.  For a *static*
commutativity relation this is decidable by the projection
characterization (equal letter multisets and equal projections onto
every dependent pair); :func:`equivalent` uses it, and
:func:`enumerate_class` does explicit swap-closure for class listings.
"""

from __future__ import annotations

from collections import Counter, deque
from typing import Iterable, Sequence

from ..lang.statements import Statement
from .commutativity import CommutativityRelation

Word = tuple[Statement, ...]


def equivalent(
    first: Sequence[Statement],
    second: Sequence[Statement],
    commutativity: CommutativityRelation,
) -> bool:
    """Mazurkiewicz equivalence via the projection characterization."""
    if len(first) != len(second):
        return False
    if Counter(map(id, first)) != Counter(map(id, second)):
        return False
    letters = sorted(set(first), key=lambda s: s.uid)
    for i, a in enumerate(letters):
        for b in letters[i:]:
            if a is not b and commutativity.commute(a, b):
                continue
            proj_first = [s for s in first if s is a or s is b]
            proj_second = [s for s in second if s is a or s is b]
            if proj_first != proj_second:
                return False
    return True


def enumerate_class(
    word: Sequence[Statement], commutativity: CommutativityRelation
) -> frozenset[Word]:
    """All words equivalent to *word* (swap-closure BFS)."""
    start: Word = tuple(word)
    seen: set[Word] = {start}
    queue: deque[Word] = deque([start])
    while queue:
        w = queue.popleft()
        for i in range(len(w) - 1):
            a, b = w[i], w[i + 1]
            if a is not b and commutativity.commute(a, b):
                swapped = w[:i] + (b, a) + w[i + 2 :]
                if swapped not in seen:
                    seen.add(swapped)
                    queue.append(swapped)
    return frozenset(seen)


def partition_into_classes(
    words: Iterable[Sequence[Statement]],
    commutativity: CommutativityRelation,
) -> list[frozenset[Word]]:
    """Partition *words* into Mazurkiewicz equivalence classes.

    Only the given words are grouped (the classes are intersected with
    the input set) — handy for partitioning a language slice.
    """
    remaining: set[Word] = {tuple(w) for w in words}
    classes: list[frozenset[Word]] = []
    while remaining:
        w = remaining.pop()
        cls = enumerate_class(w, commutativity)
        members = (cls & remaining) | {w}
        remaining -= cls
        classes.append(frozenset(members))
    return classes


def dependence_graph(
    word: Sequence[Statement], commutativity: CommutativityRelation
) -> tuple[tuple[int, int], ...]:
    """The dependence graph of a word: edges (i, j) with i < j between
    positions whose letters do not commute (the trace's partial order,
    transitively unreduced).

    Two words are equivalent iff they induce isomorphic dependence
    graphs; used for visualization (see ``repro.automata.dot``) and as
    yet another equivalence oracle in tests.
    """
    edges: list[tuple[int, int]] = []
    for j in range(len(word)):
        for i in range(j):
            a, b = word[i], word[j]
            if a is b or not commutativity.commute(a, b):
                edges.append((i, j))
    return tuple(edges)


def foata_normal_form(
    word: Sequence[Statement], commutativity: CommutativityRelation
) -> tuple[frozenset[Statement], ...]:
    """The Foata normal form: a sequence of steps (independence cliques).

    Each letter is placed in the earliest step after the last letter it
    depends on.  Equivalent words have equal Foata normal forms, making
    this a canonical class representative (used in property tests).
    """
    steps: list[list[Statement]] = []
    for letter in word:
        depth = 0
        for level, step in enumerate(steps):
            if any(
                s is letter or not commutativity.commute(s, letter)
                for s in step
            ):
                depth = level + 1
        if depth == len(steps):
            steps.append([])
        steps[depth].append(letter)
    return tuple(frozenset(step) for step in steps)
