"""Edit-distance-aware replay of recorded exploration logs.

PR 5's warm start replays the *previous round's* edges within one run;
this module generalizes it **across program versions**: the per-round
edge streams a solved run recorded (persisted in its ``explore``
record) are replayed against an *edited* program, state by state, until
the first state whose outgoing letters could be touched by the edit —
from there the live search takes over.

Why this is sound (and bit-identical under deterministic budgets):

* A recorded state was expanded in the old run — neither a goal nor
  covered there.  Goal-ness and coverage depend only on ⟨q, φ⟩ and on
  definite solver facts (``entails`` answers are valid forever), so if
  the new run reaches the *same* tuple under the *same* predicate
  vocabulary, the determination still holds.
* "Same tuple" is meaningful because replay requires a
  skeleton-compatible edit (:attr:`EditPlan.replay_compatible`):
  locations, edge-list order, observer status, and uid rank order all
  survive, so a product state / sleep set / context recorded in the old
  run denotes the identical object in the new one.
* "Same vocabulary" is enforced per round: the recorded predicate
  digests must be a bit-exact prefix match for the new run's vocabulary
  at that round (:meth:`ReplaySource.map_for_round`).  The first
  mismatching round kills replay permanently — refinement diverged, and
  later rounds build on the divergent vocabulary.
* The recorded *reduced* edge stream of a state is a sound reduction in
  the new program provided no letter the reduction rule consulted was
  edited.  The sleep rule reads the letters enabled at q; membranes
  (persistent/combined modes) additionally read every statement
  reachable *ahead* of q in each thread.  :class:`ReplaySource`
  precomputes per-location touched tables for both and gates each
  recorded state accordingly — a gated state is simply not answered,
  and the engine's live path re-derives it (``delta_replay_gated``).

The serialized payload is pure JSON (statement table by content digest,
context codec below); a payload that fails to decode — or a context
type the codec does not cover — degrades to "no replay", never to a
wrong answer.
"""

from __future__ import annotations

from ..lang.program import ConcurrentProgram
from ..lang.statements import Statement
from .diff import EditPlan

#: replay payload format; alien formats are ignored
REPLAY_FORMAT = 1

#: recorded state entries beyond this (summed over rounds) disable
#: recording — replay payloads ride inside ``explore`` records and must
#: stay a bounded fraction of the store
REPLAY_LOG_LIMIT = 50_000


class _Unsupported(Exception):
    """A value outside the replay codec (serialization degrades to None)."""


def _encode_context(ctx) -> list:
    if ctx is None:
        return [0]
    if isinstance(ctx, (bool, int)):
        # True == 1 and hash(True) == hash(1): the round-trip through
        # int changes neither dict lookups nor tuple equality
        return [1, int(ctx)]
    if isinstance(ctx, str):
        return [2, ctx]
    if isinstance(ctx, tuple):
        return [3, [_encode_context(c) for c in ctx]]
    raise _Unsupported(f"context {type(ctx).__name__} not serializable")


def _decode_context(obj):
    tag = obj[0]
    if tag == 0:
        return None
    if tag == 1:
        return obj[1]
    if tag == 2:
        return obj[1]
    if tag == 3:
        return tuple(_decode_context(c) for c in obj[1])
    raise ValueError(f"unknown context tag {tag!r}")


def serialize_replay(round_logs, vocab_at_round, predicates) -> dict | None:
    """Encode recorded rounds as a JSON-able replay payload.

    *round_logs* is a list of per-round dicts mapping a check state
    ``(q, φ, sleep, ctx)`` to its recorded warm edges ``(letter, q2,
    sleep2, ctx2)``.  Statements are referenced through a digest table,
    so the payload carries no process-local uids.  Returns None when
    anything falls outside the codec (exotic context, non-int product
    state) or the log overflows :data:`REPLAY_LOG_LIMIT` — the caller
    simply persists no payload.
    """
    from ..store import statement_digest, term_digest

    stmt_index: dict[int, int] = {}
    stmt_digests: list[str] = []

    def stmt_id(statement: Statement) -> int:
        idx = stmt_index.get(statement.uid)
        if idx is None:
            idx = len(stmt_digests)
            stmt_index[statement.uid] = idx
            stmt_digests.append(statement_digest(statement).hex())
        return idx

    total = 0
    rounds: list[list] = []
    try:
        for log in round_logs:
            entries: list[list] = []
            for (q, phi, sleep, ctx), edges in log.items():
                if not all(isinstance(loc, int) for loc in q):
                    raise _Unsupported("non-integer product state")
                entries.append([
                    list(q),
                    sorted(phi),
                    sorted(stmt_id(s) for s in sleep),
                    _encode_context(ctx),
                    [
                        [
                            stmt_id(a),
                            list(q2),
                            sorted(stmt_id(s) for s in sleep2),
                            _encode_context(ctx2),
                        ]
                        for a, q2, sleep2, ctx2 in edges
                    ],
                ])
            total += len(entries)
            if total > REPLAY_LOG_LIMIT:
                return None
            rounds.append(entries)
    except _Unsupported:
        return None
    return {
        "format": REPLAY_FORMAT,
        "statements": stmt_digests,
        "vocab_at_round": list(vocab_at_round),
        "pred_digests": [term_digest(p).hex() for p in predicates],
        "rounds": rounds,
    }


class ReplaySource:
    """Serves a baseline run's recorded edge streams to the new run.

    Built by the delta stage of ``verify()`` when the edit plan is
    replay-compatible; consumed by the checker's warm hook (pure
    engine, bfs, incremental only).  Each round's map is translated
    lazily and memoized; a vocabulary mismatch marks the source *dead*
    for all later rounds.
    """

    def __init__(
        self,
        payload: dict,
        plan: EditPlan,
        program: ConcurrentProgram,
        mode: str,
    ) -> None:
        from ..store import statement_digest

        self.ok = (
            isinstance(payload, dict)
            and payload.get("format") == REPLAY_FORMAT
            and isinstance(payload.get("rounds"), list)
            and plan.replay_compatible
        )
        #: recorded states withheld because the edit could reach their
        #: reduction decision (served instead by the live search)
        self.gated_states = 0
        #: recorded states dropped for mechanical reasons (an edited or
        #: unmapped statement in the stream itself)
        self.dropped_states = 0
        #: rounds that produced a non-empty translated map
        self.rounds_replayed = 0
        self._dead = not self.ok
        if not self.ok:
            self._rounds = []
            self._vocab = []
            self._pred_digests = []
            self._maps = {}
            return
        self._rounds = payload["rounds"]
        self._vocab = payload.get("vocab_at_round") or []
        self._pred_digests = payload.get("pred_digests") or []
        self._maps: dict[int, dict | None] = {}
        # digest -> new-program statement; digests are unique per
        # statement (they cover thread, label, and payload), but an
        # unexpected collision degrades to "unresolved", never to a
        # misattributed letter
        by_digest: dict[str, Statement | None] = {}
        for _i, _src, statement, _dst in program.statements():
            hexd = statement_digest(statement).hex()
            by_digest[hexd] = None if hexd in by_digest else statement
        self._stmts: list[Statement | None] = [
            by_digest.get(hexd) for hexd in payload.get("statements") or []
        ]
        edited = plan.edited_uids
        for pos, statement in enumerate(self._stmts):
            if statement is not None and statement.uid in edited:
                self._stmts[pos] = None  # edited letters never replay
        # per-thread gate tables: does any *edited* statement hang off
        # this location (enabled gate), or off any location reachable
        # from it (future gate — membranes read ahead, §6)?
        self._enabled_touched: list[dict[int, bool]] = []
        self._future_touched: list[dict[int, bool]] | None = None
        for thread in program.threads:
            table = {
                loc: any(
                    s.uid in edited for s, _ in thread.edges.get(loc, ())
                )
                for loc in thread.locations
            }
            self._enabled_touched.append(table)
        if mode in ("combined", "persistent"):
            self._future_touched = []
            for i, thread in enumerate(program.threads):
                enabled = self._enabled_touched[i]
                self._future_touched.append({
                    loc: any(
                        enabled.get(loc2, False)
                        for loc2 in thread.reachable_from(loc)
                    )
                    for loc in thread.locations
                })

    # -- gates ---------------------------------------------------------------

    def _gate_ok(self, q) -> bool:
        """May the recorded reduction decision at *q* be trusted?

        With a membrane in play the persistent-set choice at q read
        every statement reachable ahead in each thread, so the edit must
        be unreachable from q; the sleep rule alone only read the
        letters enabled at q.
        """
        tables = (
            self._future_touched
            if self._future_touched is not None
            else self._enabled_touched
        )
        for i, loc in enumerate(q):
            if tables[i].get(loc, True):
                return False
        return True

    def _predicates_ok(self, round_index: int, fh) -> bool:
        from ..store import term_digest

        if round_index >= len(self._vocab):
            return False
        vocab = self._vocab[round_index]
        predicates = fh.predicates
        if len(predicates) != vocab or vocab > len(self._pred_digests):
            return False
        return all(
            term_digest(predicates[i]).hex() == self._pred_digests[i]
            for i in range(vocab)
        )

    # -- per-round maps ------------------------------------------------------

    def map_for_round(self, round_index: int, fh) -> dict | None:
        """The warm map for the new run's round *round_index*, or None.

        None means: no recorded round, vocabulary diverged (permanently
        dead from then on), or nothing survived the gates.
        """
        if self._dead or round_index >= len(self._rounds):
            return None
        if not self._predicates_ok(round_index, fh):
            # refinement diverged from the baseline run; every later
            # round builds on the divergent vocabulary
            self._dead = True
            return None
        if round_index not in self._maps:
            self._maps[round_index] = self._translate(round_index)
            if self._maps[round_index]:
                self.rounds_replayed += 1
        return self._maps[round_index]

    def _translate(self, round_index: int) -> dict | None:
        try:
            return self._translate_round(self._rounds[round_index])
        except (IndexError, TypeError, ValueError, KeyError):
            # malformed payload: stop trusting it wholesale
            self._dead = True
            return None

    def _translate_round(self, entries) -> dict | None:
        stmts = self._stmts
        out: dict = {}
        for q_enc, phi_enc, sleep_enc, ctx_enc, edges_enc in entries:
            q = tuple(q_enc)
            if not self._gate_ok(q):
                self.gated_states += 1
                continue
            sleep_stmts = [stmts[i] for i in sleep_enc]
            if any(s is None for s in sleep_stmts):
                self.dropped_states += 1
                continue
            edges = []
            resolved = True
            for a_idx, q2_enc, sl2_enc, ctx2_enc in edges_enc:
                a = stmts[a_idx]
                sl2 = [stmts[i] for i in sl2_enc]
                if a is None or any(s is None for s in sl2):
                    resolved = False
                    break
                edges.append(
                    (
                        a,
                        tuple(q2_enc),
                        frozenset(sl2),
                        _decode_context(ctx2_enc),
                    )
                )
            if not resolved:
                self.dropped_states += 1
                continue
            state = (
                q,
                frozenset(phi_enc),
                frozenset(sleep_stmts),
                _decode_context(ctx_enc),
            )
            out[state] = tuple(edges)
        return out or None
