"""Satisfiability and validity for quantifier-free LIA + booleans.

The solver performs DPLL-style case splitting over the boolean structure
of a formula in NNF, accumulating linear constraints along each branch
and pruning infeasible branches with rational Fourier–Motzkin checks.
Leaves are decided by integer branch-and-bound (:mod:`repro.logic.fourier`).

Soundness notes:

* rational infeasibility implies integer infeasibility, so UNSAT answers
  are always sound;
* SAT answers come with an integer model, so they are sound as well;
* in the (rare, bounded-budget) case where branch-and-bound cannot reach
  a verdict, :class:`SolverUnknown` is raised; callers treat "unknown"
  conservatively (e.g. commutativity falls back to "does not commute",
  exactly as GemCutter does with its SMT timeout — see §8 of the paper).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, fields

from .atoms import LinearConstraint, atom_constraints
from .fourier import BranchBudgetExceeded, integer_model, rationally_feasible
from .terms import register_kernel_cache
from .terms import (
    And,
    BoolConst,
    Eq,
    FALSE,
    Ite,
    Le,
    Mul,
    Add,
    Not,
    Or,
    TRUE,
    Term,
    add,
    and_,
    compile_eval,
    eq,
    gt,
    ite,
    le,
    lt,
    mul,
    not_,
    or_,
)


class SolverUnknown(Exception):
    """The solver could not decide the query within its budget."""


@dataclass
class SolverStats:
    """Instrumentation counters for one :class:`Solver` instance.

    ``sat_queries`` counts public satisfiability-level questions
    (``is_sat`` and everything funnelled through it: validity,
    implication, equivalence).  A question is answered either by the
    normalized-formula cache (``cache_hits``), by a remembered model
    (``model_pool_hits``), by a cached same-epoch UNKNOWN
    (``unknown_cache_hits``), or by a full run of the decision procedure
    (``decisions``).  ``time_seconds`` is wall-clock spent inside the
    decision procedure only — the cache layers are excluded, so the
    saved work is visible as the gap to the end-to-end time.
    """

    sat_queries: int = 0
    cache_hits: int = 0
    model_pool_hits: int = 0
    unknown_cache_hits: int = 0
    decisions: int = 0
    unknowns: int = 0
    time_seconds: float = 0.0
    nodes_searched: int = 0
    max_query_nodes: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of sat-level questions answered without a decision."""
        if not self.sat_queries:
            return 0.0
        saved = self.cache_hits + self.model_pool_hits + self.unknown_cache_hits
        return saved / self.sat_queries

    def as_dict(self) -> dict:
        out = {f.name: getattr(self, f.name) for f in fields(self)}
        out["hit_rate"] = round(self.hit_rate, 4)
        return out


# ---------------------------------------------------------------------------
# Ite lifting
# ---------------------------------------------------------------------------

def _find_ite(term: Term) -> Ite | None:
    """The first ``Ite`` node nested inside an integer-sorted term."""
    stack = [term]
    while stack:
        t = stack.pop()
        if isinstance(t, Ite):
            return t
        if isinstance(t, Add):
            stack.extend(t.args)
        elif isinstance(t, Mul):
            stack.append(t.arg)
    return None


def _replace(term: Term, target: Term, replacement: Term) -> Term:
    """Replace all occurrences of *target* inside an integer-sorted term."""
    if term == target:
        return replacement
    if isinstance(term, Add):
        return add(*(_replace(a, target, replacement) for a in term.args))
    if isinstance(term, Mul):
        return mul(term.coeff, _replace(term.arg, target, replacement))
    return term


_lift_ite_cache: dict[Term, Term] = register_kernel_cache({})


def lift_ite(formula: Term) -> Term:
    """Rewrite a formula so no atom contains an ``Ite`` node.

    An atom ``A[ite(c, t, e)]`` becomes ``(c && A[t]) || (!c && A[e])``.
    The condition ``c`` is itself recursively lifted.  Memoized
    process-wide: lifting is pure and terms are interned, so the node is
    the cache key.
    """
    hit = _lift_ite_cache.get(formula)
    if hit is not None:
        return hit
    result = _lift_ite(formula)
    if len(_lift_ite_cache) < 200_000:
        _lift_ite_cache[formula] = result
    return result


def _lift_ite(formula: Term) -> Term:
    if isinstance(formula, BoolConst):
        return formula
    if isinstance(formula, Not):
        return not_(lift_ite(formula.arg))
    if isinstance(formula, And):
        return and_(*(lift_ite(a) for a in formula.args))
    if isinstance(formula, Or):
        return or_(*(lift_ite(a) for a in formula.args))
    if isinstance(formula, (Le, Eq)):
        sides = (formula.lhs, formula.rhs)
        for side in sides:
            found = _find_ite(side)
            if found is not None:
                then_atom = _rebuild_atom(formula, found, found.then)
                else_atom = _rebuild_atom(formula, found, found.else_)
                cond = lift_ite(found.cond)
                return or_(
                    and_(cond, lift_ite(then_atom)),
                    and_(not_(cond), lift_ite(else_atom)),
                )
        return formula
    raise TypeError(f"not a formula: {formula!r}")


def _rebuild_atom(atom: Term, target: Term, replacement: Term) -> Term:
    if isinstance(atom, Le):
        return le(_replace(atom.lhs, target, replacement), _replace(atom.rhs, target, replacement))
    if isinstance(atom, Eq):
        return eq(_replace(atom.lhs, target, replacement), _replace(atom.rhs, target, replacement))
    raise TypeError(f"not an atom: {atom!r}")


# ---------------------------------------------------------------------------
# NNF
# ---------------------------------------------------------------------------

_nnf_cache: dict[tuple[Term, bool], Term] = register_kernel_cache({})


def to_nnf(formula: Term, *, negate: bool = False) -> Term:
    """Negation normal form; negations remain only directly on atoms.

    Memoized process-wide by ``(node, polarity)``.
    """
    key = (formula, negate)
    hit = _nnf_cache.get(key)
    if hit is not None:
        return hit
    result = _to_nnf(formula, negate)
    if len(_nnf_cache) < 200_000:
        _nnf_cache[key] = result
    return result


def _to_nnf(formula: Term, negate: bool) -> Term:
    if isinstance(formula, BoolConst):
        return BoolConst(formula.value != negate)
    if isinstance(formula, Not):
        return to_nnf(formula.arg, negate=not negate)
    if isinstance(formula, And):
        parts = tuple(to_nnf(a, negate=negate) for a in formula.args)
        return or_(*parts) if negate else and_(*parts)
    if isinstance(formula, Or):
        parts = tuple(to_nnf(a, negate=negate) for a in formula.args)
        return and_(*parts) if negate else or_(*parts)
    if isinstance(formula, (Le, Eq)):
        return not_(formula) if negate else formula
    raise TypeError(f"not a formula: {formula!r}")


# ---------------------------------------------------------------------------
# DPLL-style search
# ---------------------------------------------------------------------------

#: keyed by ``literal.nid`` — the values carry no terms, so the memo
#: never pins a node; a dead literal's entry is unreachable, never wrong
_branches_cache: dict[int, tuple[tuple[LinearConstraint, ...], ...]] = {}


def _branches(literal: Term) -> tuple[tuple[LinearConstraint, ...], ...]:
    """Constraint alternatives for one NNF literal (memoized).

    Positive ``Le``/``Eq`` yield a single alternative; ``!Eq`` splits
    into the two strict sides.
    """
    cached = _branches_cache.get(literal.nid)
    if cached is not None:
        return cached
    if isinstance(literal, Le):
        result = (atom_constraints(literal, negated=False),)
    elif isinstance(literal, Eq):
        result = (atom_constraints(literal, negated=False),)
    elif isinstance(literal, Not):
        atom = literal.arg
        if isinstance(atom, Le):
            result = (atom_constraints(atom, negated=True),)
        elif isinstance(atom, Eq):
            # lhs != rhs:  lhs < rhs  or  lhs > rhs
            result = (
                atom_constraints(lt(atom.lhs, atom.rhs), negated=False),
                atom_constraints(gt(atom.lhs, atom.rhs), negated=False),
            )
        else:
            raise TypeError(f"not an NNF literal: {literal!r}")
    else:
        raise TypeError(f"not an NNF literal: {literal!r}")
    if len(_branches_cache) < 200_000:
        _branches_cache[literal.nid] = result
    return result


def _is_literal(f: Term) -> bool:
    return isinstance(f, (Le, Eq)) or (isinstance(f, Not) and isinstance(f.arg, (Le, Eq)))


class Solver:
    """A caching solver facade.

    All public methods accept arbitrary formulas (``Ite`` allowed) and
    answer over the integers.  Verdicts are memoized under the
    *normalized* formula — the NNF of the ite-lifted (and, for array
    formulas, Ackermannized) input — so syntactically different phrasings
    of the same query share one cache entry.  The number of (uncached)
    decision calls is tracked in :attr:`num_queries` / :attr:`stats` for
    the evaluation harness.

    Deadline epochs: UNKNOWN verdicts caused by an exhausted budget are
    remembered only for the current *deadline epoch* — the epoch advances
    whenever :attr:`deadline` is assigned a new value, so a query that
    timed out under an expired deadline is retried under a fresh budget
    instead of leaking a stale UNKNOWN into the next run.  Definite
    SAT/UNSAT verdicts are deadline-independent and cached across epochs.

    ``enable_cache=False`` turns every memoization layer off (the
    differential test suite uses this to prove the cache is semantically
    invisible).
    """

    def __init__(
        self,
        *,
        branch_budget: int = 400,
        cache_size: int = 200_000,
        node_budget: int = 200_000,
        enable_cache: bool = True,
    ) -> None:
        self._branch_budget = branch_budget
        self._cache_size = cache_size
        self._node_budget = node_budget
        self._enable_cache = enable_cache
        self._nodes_this_query = 0
        # all three caches key on interned-node ids: hashing is O(1) and
        # a hit never pays a structural compare; nids are never reused,
        # so entries for dead nodes are unreachable, never wrong
        self._sat_cache: dict[int, bool] = {}
        self._normal_cache: dict[int, tuple[Term, Term]] = {}
        self._unknown_cache: dict[int, int] = {}
        self._model_pool: list[dict[str, int]] = []
        self.num_queries = 0
        self.stats = SolverStats()
        self._deadline: float | None = None
        self._deadline_epoch = 0
        #: optional fault-injection hook (repro.verifier.faults); called
        #: once per sat-level query, before any cache lookup, so injected
        #: schedules are a pure function of the query index
        self.fault_injector = None
        #: optional persistent proof store (repro.store.ProofStore);
        #: consulted after every in-memory layer misses and written back
        #: with definite verdicts only — an UNKNOWN raise never reaches
        #: the write, so budget-dependent outcomes are never persisted
        self.proof_store = None

    @property
    def deadline(self) -> float | None:
        """Optional absolute wall-clock deadline (time.perf_counter());
        long-running queries abort with SolverUnknown past it.  Assigning
        a new value starts a new deadline epoch, invalidating cached
        UNKNOWNs from the previous budget."""
        return self._deadline

    @deadline.setter
    def deadline(self, value: float | None) -> None:
        if value != self._deadline:
            self._deadline_epoch += 1
            self._unknown_cache.clear()
        self._deadline = value

    def _remember_model(self, model: dict[str, int]) -> None:
        """Keep recent models for cheap SAT witnessing of later queries."""
        if model and model not in self._model_pool:
            self._model_pool.append(model)
            if len(self._model_pool) > 64:
                self._model_pool.pop(0)

    def _model_pool_hit(self, formula: Term) -> bool:
        """Does some cached model satisfy *formula*? (cheap pre-check)"""
        names = formula.free_vars
        check = compile_eval(formula)
        for model in self._model_pool:
            env = {name: model.get(name, 0) for name in names}
            try:
                if check(env):
                    return True
            except TypeError:  # pragma: no cover - defensive
                return False
        return False

    # -- normalization ------------------------------------------------------

    def _normalize(self, formula: Term) -> tuple[Term, Term]:
        """``(expanded, nnf)``: the Ackermannized formula and its cache key.

        The key is the NNF of the ite-lifted expansion.  Memoized per raw
        formula, so the structural work is paid once per distinct input;
        semantically identical phrasings (double negations, implication
        vs. disjunction spellings, ...) collapse onto one normalized
        entry.
        """
        cached = self._normal_cache.get(formula.nid)
        if cached is not None:
            return cached
        from .arrays import UnsupportedArrayFormula, ackermannize, contains_arrays

        expanded = formula
        if contains_arrays(expanded):
            try:
                expanded = ackermannize(expanded)
            except UnsupportedArrayFormula as exc:
                raise SolverUnknown(str(exc)) from exc
        result = (expanded, to_nnf(lift_ite(expanded)))
        if len(self._normal_cache) < self._cache_size:
            self._normal_cache[formula.nid] = result
        return result

    # -- public API ---------------------------------------------------------

    def is_sat(self, formula: Term) -> bool:
        """Is *formula* satisfiable over the integers?"""
        self.stats.sat_queries += 1
        if self.fault_injector is not None:
            self.fault_injector.before_query()
        expanded, nnf = self._normalize(formula)
        if not self._enable_cache:
            return self._decide(nnf, expanded) is not None
        hit = self._sat_cache.get(nnf.nid)
        if hit is not None:
            self.stats.cache_hits += 1
            return hit
        if self._unknown_cache.get(nnf.nid) == self._deadline_epoch:
            self.stats.unknown_cache_hits += 1
            raise SolverUnknown("cached unknown (same deadline epoch)")
        if self._model_pool_hit(formula):
            self.stats.model_pool_hits += 1
            result = True
        else:
            result = self._stored_or_decide(nnf, expanded)
        if len(self._sat_cache) < self._cache_size:
            self._sat_cache[nnf.nid] = result
        return result

    def _stored_or_decide(self, nnf: Term, expanded: Term) -> bool:
        """Persistent-store lookup, falling back to a decision run.

        The store is consulted only after every in-memory layer missed,
        so in-run behavior is byte-identical with or without it; a fresh
        decision's verdict is written back (definite verdicts only — an
        UNKNOWN propagates as an exception and never reaches the write).
        """
        store = self.proof_store
        if store is None:
            return self._decide(nnf, expanded) is not None
        from ..store import KIND_SAT, term_digest

        key = term_digest(nnf)
        hit = store.get(KIND_SAT, key)
        if hit is not None:
            return bool(hit)
        result = self._decide(nnf, expanded) is not None
        store.put(KIND_SAT, key, result)
        return result

    def is_valid(self, formula: Term) -> bool:
        """Is *formula* true under every integer assignment?"""
        return not self.is_sat(not_(formula))

    def implies(self, antecedent: Term, consequent: Term) -> bool:
        """Does *antecedent* entail *consequent*?

        A conjunctive consequent is split into one query per conjunct —
        the queries are smaller and their cache entries are shared
        across different enclosing conjunctions.
        """
        if antecedent == FALSE or consequent == TRUE or antecedent == consequent:
            return True
        if isinstance(consequent, And):
            return all(self.implies(antecedent, part) for part in consequent.args)
        return not self.is_sat(and_(antecedent, not_(consequent)))

    def equivalent(self, a: Term, b: Term) -> bool:
        return self.implies(a, b) and self.implies(b, a)

    def model(self, formula: Term) -> dict[str, int] | None:
        """An integer model of *formula*, or ``None`` if unsatisfiable."""
        expanded, nnf = self._normalize(formula)
        if self._enable_cache and self._sat_cache.get(nnf.nid) is False:
            self.stats.cache_hits += 1
            return None
        return self._decide(nnf, expanded)

    # -- decision procedure --------------------------------------------------

    def _decide(self, nnf: Term, expanded: Term) -> dict[str, int] | None:
        """One full run of the DPLL search on a normalized formula."""
        self.num_queries += 1
        self.stats.decisions += 1
        if self._deadline is not None and time.perf_counter() > self._deadline:
            self.stats.unknowns += 1
            if self._enable_cache and len(self._unknown_cache) < self._cache_size:
                self._unknown_cache[nnf.nid] = self._deadline_epoch
            raise SolverUnknown("solver deadline already expired")
        self._nodes_this_query = 0
        started = time.perf_counter()
        try:
            model = self._search([nnf], ())
        except (BranchBudgetExceeded, SolverUnknown) as exc:
            self.stats.unknowns += 1
            if self._enable_cache and len(self._unknown_cache) < self._cache_size:
                self._unknown_cache[nnf.nid] = self._deadline_epoch
            if isinstance(exc, SolverUnknown):
                raise
            raise SolverUnknown(f"budget exceeded for {expanded!r}") from exc
        finally:
            self.stats.time_seconds += time.perf_counter() - started
            self.stats.nodes_searched += self._nodes_this_query
            if self._nodes_this_query > self.stats.max_query_nodes:
                self.stats.max_query_nodes = self._nodes_this_query
        if model is None:
            return None
        # Unconstrained variables (dropped by trivially-true constraints)
        # still need a value for the model to be total over the formula.
        for name in expanded.free_vars:
            model.setdefault(name, 0)
        if self._enable_cache:
            self._remember_model(model)
        return model

    # -- search -------------------------------------------------------------

    def _search(
        self, pending: list[Term], constraints: tuple[LinearConstraint, ...]
    ) -> dict[str, int] | None:
        self._nodes_this_query += 1
        if self._nodes_this_query > self._node_budget:
            raise SolverUnknown("per-query node budget exceeded")
        if self._deadline is not None and self._nodes_this_query % 512 == 0:
            if time.perf_counter() > self._deadline:
                raise SolverUnknown("solver deadline exceeded")
        # Process conjuncts and literals first, delaying disjunctive splits.
        pending = list(pending)
        ors: list[Term] = []
        work = list(pending)
        gathered = list(constraints)
        alternatives: list[Term] = []
        while work:
            f = work.pop()
            if isinstance(f, BoolConst):
                if not f.value:
                    return None
            elif isinstance(f, And):
                work.extend(f.args)
            elif isinstance(f, Or):
                ors.append(f)
            elif _is_literal(f):
                branches = list(_branches(f))
                if len(branches) == 1:
                    gathered.extend(branches[0])
                else:
                    alternatives.append(f)  # disequality: split later
            else:
                raise TypeError(f"unexpected node in NNF search: {f!r}")
        # Feasibility pruning before splitting.
        if ors or alternatives:
            if not rationally_feasible(gathered):
                return None
        if alternatives:
            f = alternatives.pop()
            rest = ors + alternatives
            for branch in _branches(f):
                hit = self._search(rest, tuple(gathered) + branch)
                if hit is not None:
                    return hit
            return None
        if ors:
            f = ors.pop()
            for arg in f.args:
                hit = self._search(ors + [arg], tuple(gathered))
                if hit is not None:
                    return hit
            return None
        return integer_model(gathered, budget=self._branch_budget)


_default_solver = Solver()


def default_solver() -> Solver:
    """The process-wide shared solver (shared cache)."""
    return _default_solver
