"""Floyd/Hoare automata via predicate abstraction (§7.2, after [19]).

The automaton's states are the *assertions* of the candidate proof.  We
use the canonical deterministic construction over a finite predicate
vocabulary P: a state is the set of predicates known to hold (read as
their conjunction), and

    δ_A(Φ, a) = { p ∈ P | the Hoare triple {⋀Φ} a {p} is valid }

— every transition is a bundle of solver-checked Hoare triples, so any
run of the automaton is a valid Floyd/Hoare annotation of the word it
reads.  A state whose conjunction is unsatisfiable is the ⊥ state: every
trace reaching it is proven infeasible (covered by the proof).

All triple checks are memoized; the number of distinct reachable states
during a proof check is the paper's *proof size* metric.

Incremental rounds (delta-aware transitions).  The CEGAR loop only ever
*grows* the vocabulary, and growth cannot change anything about the old
indices: a cached step entry's source state Φ contains only old indices,
so its assertion φ = ⋀Φ is unchanged, and with it every already-solved
per-predicate triple verdict and the guard-satisfiability check.  In
incremental mode (the default) the step cache is therefore *versioned*
instead of cleared: an entry computed under vocabulary length V is
upgraded to length N by solving Hoare triples **only for the new indices
V..N-1**, re-running the final bottom-satisfiability check only when a
new predicate actually joined the holding set.  Both ⊥ causes are
monotone in the vocabulary (an excluded guard stays excluded, an
unsatisfiable conjunction only gains conjuncts), so a ⊥ entry is final.
The implied-predicate scan of :meth:`initial_state` is delta-stepped the
same way.  ``incremental=False`` restores the wholesale
``_step_cache.clear()`` so the differential suite can prove the two
modes equivalent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..lang.statements import Statement
from ..logic import FALSE, Solver, SolverUnknown, TRUE, Term, and_
from ..logic.relevance import relevant_context

FhState = frozenset[int]

BOTTOM: FhState = frozenset({-1})  # sentinel: unsatisfiable conjunction


@dataclass
class FhStats:
    """Counters for the delta-aware transition cache.

    ``step_hits`` are same-vocabulary cache hits (the classical memo);
    ``step_delta_hits`` count entries *upgraded* across a vocabulary
    growth — the old holding set and triple verdicts were reused and
    only the new predicate indices were solved; ``step_delta_misses``
    are full from-scratch computations.  ``initial_delta_hits`` count
    the same reuse in the implied-predicate scan of ``initial_state``.
    """

    step_hits: int = 0
    step_delta_hits: int = 0
    step_delta_misses: int = 0
    initial_delta_hits: int = 0


class _StepEntry:
    """A versioned step-cache entry: result under ``vocab`` predicates.

    ``holding`` is the raw holding set before ⊥ detection (needed to
    extend the entry on vocabulary growth); it is ``None`` once the
    entry went ⊥ — both ⊥ causes are monotone, so the entry is final.
    """

    __slots__ = ("result", "holding", "vocab")

    def __init__(self, result: FhState, holding: FhState | None, vocab: int) -> None:
        self.result = result
        self.holding = holding
        self.vocab = vocab


class FloydHoareAutomaton:
    """Deterministic predicate-abstraction automaton over a predicate set."""

    def __init__(
        self,
        predicates: Sequence[Term],
        solver: Solver,
        *,
        incremental: bool = True,
        proof_store=None,
        delta_tracker=None,
    ) -> None:
        self._solver = solver
        self._incremental = incremental
        #: optional persistent proof store: triple verdicts are keyed by
        #: (context digest, statement digest, predicate digest), so they
        #: survive the process and program edits that do not touch them
        self._store = proof_store
        #: optional :class:`repro.delta.DeltaTracker`: attributes each
        #: store probe to the edit plan of a delta run (pure observation)
        self.delta_tracker = delta_tracker
        self._predicates: list[Term] = []
        self._pred_index: dict[Term, int] = {}
        # (context.nid, letter.uid, pred_index): identity-keyed — a hit
        # never pays a structural compare, and the memo pins no terms
        self._triple_cache: dict[tuple[int, int, int], bool] = {}
        self._wp_cache: dict[tuple[int, int], Term] = {}
        self._assertion_cache: dict[FhState, Term] = {}
        self._step_cache: dict[tuple[FhState, int], _StepEntry] = {}
        # pre.nid -> [sat(pre), holding list, vocab length]; delta-scanned
        self._initial_cache: dict[int, list] = {}
        self.stats = FhStats()
        for p in predicates:
            self.add_predicate(p)

    # -- predicate vocabulary -----------------------------------------------

    @property
    def predicates(self) -> tuple[Term, ...]:
        return tuple(self._predicates)

    @property
    def incremental(self) -> bool:
        return self._incremental

    def add_predicate(self, predicate: Term) -> bool:
        """Add to the vocabulary; returns False if already present."""
        if predicate in self._pred_index or predicate in (TRUE, FALSE):
            return False
        self._pred_index[predicate] = len(self._predicates)
        self._predicates.append(predicate)
        if not self._incremental:
            # transitions depend on the vocabulary: invalidate wholesale
            self._step_cache.clear()
            self._initial_cache.clear()
        # incremental mode keeps every entry versioned by vocabulary
        # length; stale entries are delta-upgraded lazily on next access
        return True

    # -- states ------------------------------------------------------------------

    def initial_state(self, pre: Term) -> FhState:
        """Predicates implied by the precondition (delta-scanned)."""
        n = len(self._predicates)
        entry = self._initial_cache.get(pre.nid) if self._incremental else None
        if entry is not None:
            sat, holding, vocab = entry
            if not sat:
                return BOTTOM
            if vocab < n:
                # vocabulary grew: scan only the new predicate indices —
                # pre is unchanged, so every old verdict stands
                holding.extend(
                    i
                    for i in range(vocab, n)
                    if self._implies_safe(pre, self._predicates[i])
                )
                entry[2] = n
                self.stats.initial_delta_hits += 1
            return frozenset(holding)
        if not self._solver.is_sat(pre):
            if self._incremental:
                self._initial_cache[pre.nid] = [False, [], n]
            return BOTTOM
        holding = [
            i
            for i, p in enumerate(self._predicates)
            if self._implies_safe(pre, p)
        ]
        if self._incremental:
            self._initial_cache[pre.nid] = [True, holding, n]
        return frozenset(holding)

    def assertion(self, state: FhState) -> Term:
        """The conjunction this state stands for."""
        if state == BOTTOM:
            return FALSE
        cached = self._assertion_cache.get(state)
        if cached is None:
            cached = and_(*(self._predicates[i] for i in sorted(state)))
            self._assertion_cache[state] = cached
        return cached

    def is_bottom(self, state: FhState) -> bool:
        return state == BOTTOM

    # -- transitions ----------------------------------------------------------------

    def step(self, state: FhState, letter: Statement) -> FhState:
        if state == BOTTOM:
            return BOTTOM
        key = (state, letter.uid)
        entry = self._step_cache.get(key)
        n = len(self._predicates)
        if entry is not None:
            if entry.vocab == n:
                self.stats.step_hits += 1
                return entry.result
            return self._upgrade_step(entry, state, letter, n)
        self.stats.step_delta_misses += 1
        phi = self.assertion(state)
        written = letter.written_vars()
        holding_set: set[int] = set()
        for i in range(n):
            # fast path: a predicate that already holds and whose
            # variables the letter does not write is preserved —
            # {φ} a {p} follows from φ ⇒ p ⇒ (guard → p) = wp(p, a)
            if i in state and not (written & self._pred_vars(i)):
                holding_set.add(i)
            elif self._triple(phi, letter, i):
                holding_set.add(i)
        holding = frozenset(holding_set)
        # detect the bottom state: phi excludes the letter's guard, or
        # the resulting conjunction is unsatisfiable
        result = holding
        if not self._sat_safe(and_(phi, letter.guard)):
            result = BOTTOM
        elif holding and not self._sat_safe(self.assertion(holding)):
            result = BOTTOM
        self._step_cache[key] = _StepEntry(
            result, None if result == BOTTOM else holding, n
        )
        return result

    def _upgrade_step(
        self, entry: _StepEntry, state: FhState, letter: Statement, n: int
    ) -> FhState:
        """Delta-upgrade a step entry after the vocabulary grew.

        The source state's indices all predate ``entry.vocab``, so its
        assertion φ is unchanged; only the new indices need triples, and
        the final ⊥-satisfiability check re-runs only when a new
        predicate joined the holding set.  A ⊥ entry is final (both ⊥
        causes are monotone in the vocabulary).
        """
        self.stats.step_delta_hits += 1
        if entry.holding is None:  # went ⊥ under a smaller vocabulary
            entry.vocab = n
            return entry.result
        phi = self.assertion(state)
        new_indices = [
            i
            for i in range(entry.vocab, n)
            if self._triple(phi, letter, i)
        ]
        if not new_indices:
            entry.vocab = n
            return entry.result
        holding = entry.holding | frozenset(new_indices)
        result = holding
        if not self._sat_safe(self.assertion(holding)):
            result = BOTTOM
        entry.result = result
        entry.holding = None if result == BOTTOM else holding
        entry.vocab = n
        return result

    def _triple(self, phi: Term, letter: Statement, pred_index: int) -> bool:
        """Is the Hoare triple {phi} letter {predicate} valid?

        The context *phi* is projected to its goal-relevant conjuncts
        (exact for satisfiable assertions; see repro.logic.relevance),
        which keeps the solver queries small and cache-friendly.
        """
        wp = self._wp_cache.get((letter.uid, pred_index))
        if wp is None:
            wp = letter.wp(self._predicates[pred_index])
            self._wp_cache[(letter.uid, pred_index)] = wp
        context = relevant_context(phi, wp.free_vars)
        key = (context.nid, letter.uid, pred_index)
        cached = self._triple_cache.get(key)
        if cached is not None:
            return cached
        store = self._store
        skey = None
        if store is not None:
            from ..store import KIND_HOARE, pair_digest, statement_digest, term_digest

            skey = pair_digest(
                term_digest(context),
                statement_digest(letter),
                term_digest(self._predicates[pred_index]),
            )
            hit = store.get(KIND_HOARE, skey)
            if self.delta_tracker is not None:
                self.delta_tracker.note_hoare(letter, hit is not None)
            if hit is not None:
                result = bool(hit)
                self._triple_cache[key] = result
                return result
        try:
            result = self._solver.implies(context, wp)
            definite = True
        except SolverUnknown:
            # sound fallback: claim fewer facts.  Budget-dependent, so it
            # is memoized for this run only, never persisted.
            result = False
            definite = False
        self._triple_cache[key] = result
        if definite and skey is not None:
            store.put(KIND_HOARE, skey, result)
        return result

    def _pred_vars(self, index: int) -> frozenset[str]:
        return self._predicates[index].free_vars

    def entails(self, state: FhState, formula: Term) -> bool:
        """Does this state's assertion entail *formula*? (conservative)"""
        return self._implies_safe(self.assertion(state), formula)

    def _implies_safe(self, lhs: Term, rhs: Term) -> bool:
        try:
            return self._solver.implies(lhs, rhs)
        except SolverUnknown:
            return False  # sound: claim fewer facts

    def _sat_safe(self, formula: Term) -> bool:
        try:
            return self._solver.is_sat(formula)
        except SolverUnknown:
            return True  # sound: do not claim infeasibility
