"""Term language: quantifier-free linear integer arithmetic with booleans.

Terms are immutable, *hash-consed* trees: every constructor funnels
through a global intern table, so two structurally equal terms are the
same Python object and equality is pointer identity.  Each node carries
its structural hash, its free-variable set, its node count, and an
array-occurrence flag, all precomputed at interning time — the caches in
the solver stack key on nodes (or their ``nid``) in O(1) without ever
re-walking a subtree.

Construction goes through the smart constructors at the bottom of this
module (``add``, ``and_``, ``le``, ...), which perform light
normalization (constant folding, flattening, neutral-element removal);
direct class construction (``Le(x, y)``) also interns, so the kernel
invariant — structural equality iff identity — holds for every live
node.  The full decision procedure lives in :mod:`repro.logic.solver`.

Two sorts exist: ``INT`` and ``BOOL``.  Program variables are ``Var``
nodes; the convention throughout the code base is that boolean program
variables are modeled as 0/1 integers by the language front-end, so
``Var`` is always of sort ``INT`` while formulas are of sort ``BOOL``.

Pickling goes through :func:`_reintern`, so terms crossing the
multiprocessing portfolio boundary (see :mod:`repro.verifier.runtime`)
rejoin the receiving process's intern table instead of silently breaking
identity.  The table itself holds nodes weakly; the only strong
references the kernel keeps are the derived memos (``substitute``,
``rename``, and the caches other modules register via
:func:`register_kernel_cache`), which :func:`compact_kernel` clears.
"""

from __future__ import annotations

import itertools
import weakref
from typing import Mapping


# ---------------------------------------------------------------------------
# Kernel state: intern table, node ids, counters, registered memos
# ---------------------------------------------------------------------------

class KernelStats:
    """Process-wide cumulative counters for the interning kernel."""

    __slots__ = (
        "intern_hits",
        "intern_misses",
        "reintern_count",
        "substitute_hits",
        "substitute_misses",
        "free_vars_calls",
        "kernel_compactions",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.intern_hits = 0
        self.intern_misses = 0
        self.reintern_count = 0
        self.substitute_hits = 0
        self.substitute_misses = 0
        self.free_vars_calls = 0
        self.kernel_compactions = 0


_stats = KernelStats()

#: structural key -> canonical node; weak values, so a node lives exactly
#: as long as something outside the table references it
_table: "weakref.WeakValueDictionary[tuple, Term]" = weakref.WeakValueDictionary()

#: monotone, never reused: caches keyed by ``nid`` can outlive the node
#: they describe without ever producing a wrong hit
_nid_counter = itertools.count(1)

#: derived memos that hold strong references to terms; compaction clears
#: them (the weak table then releases any nodes nothing else keeps alive)
_kernel_caches: list[dict] = []

#: default derived-memo budget before ``verify()`` compacts the kernel
KERNEL_COMPACT_THRESHOLD = 200_000


def register_kernel_cache(cache: dict) -> dict:
    """Register a term-keyed memo so :func:`compact_kernel` can clear it."""
    _kernel_caches.append(cache)
    return cache


def intern_table_size() -> int:
    """The number of live canonical nodes."""
    return len(_table)


def kernel_counters() -> dict[str, int]:
    """Snapshot of the cumulative kernel counters plus the table size."""
    return {
        "intern_hits": _stats.intern_hits,
        "intern_misses": _stats.intern_misses,
        "reintern_count": _stats.reintern_count,
        "substitute_hits": _stats.substitute_hits,
        "substitute_misses": _stats.substitute_misses,
        "free_vars_calls": _stats.free_vars_calls,
        "kernel_compactions": _stats.kernel_compactions,
        "intern_table_size": len(_table),
    }


def compact_kernel(threshold: int = 0) -> int:
    """Clear the registered derived memos if they exceed *threshold* entries.

    Called at the ``verify()`` boundary so long portfolio runs do not
    accumulate term references across independent queries.  Clearing a
    memo never changes results (all memoized functions are pure) and the
    intern table itself is weak, so canonicity of live nodes survives.
    Returns the number of entries dropped (0 if under the threshold).
    """
    total = sum(len(cache) for cache in _kernel_caches)
    if total <= threshold:
        return 0
    for cache in _kernel_caches:
        cache.clear()
    _stats.kernel_compactions += 1
    return total


_EMPTY_VARS: frozenset[str] = frozenset()


def _union_vars(children) -> frozenset[str]:
    """Union of the children's free-variable sets, sharing when possible."""
    out = _EMPTY_VARS
    for child in children:
        fv = child.free_vars
        if not fv:
            continue
        if not out:
            out = fv
        elif not fv <= out:
            out = out | fv
    return out


class Term:
    """Base class for all term nodes.

    Nodes are interned: ``__new__`` on every subclass returns the
    canonical instance for its structural key, so equality *is* object
    identity (``__eq__`` is inherited from ``object``) and ``__hash__``
    returns the precomputed structural hash.  ``Term`` instances must
    never be mutated after interning.

    Precomputed per node: ``nid`` (monotone id, never reused),
    ``free_vars`` (frozenset of variable names), ``size`` (node count),
    ``has_arrays`` (any ``AVar``/``Select``/``Store`` in the subtree).
    """

    __slots__ = ("nid", "_hash", "free_vars", "size", "has_arrays", "__weakref__")

    def __hash__(self) -> int:
        return self._hash

    def __and__(self, other: "Term") -> "Term":
        return and_(self, other)

    def __or__(self, other: "Term") -> "Term":
        return or_(self, other)

    def __invert__(self) -> "Term":
        return not_(self)

    def implies(self, other: "Term") -> "Term":
        return implies(self, other)


def _finish(node: Term, key: tuple, free: frozenset, size: int, arrays: bool) -> None:
    node.free_vars = free
    node.size = size
    node.has_arrays = arrays
    node._hash = hash(key)
    node.nid = next(_nid_counter)
    _table[key] = node


class IntConst(Term):
    """An integer literal."""

    __slots__ = ("value",)

    def __new__(cls, value: int) -> "IntConst":
        if value.__class__ is not int:
            value = int(value)
        key = (1, value)
        node = _table.get(key)
        if node is not None:
            _stats.intern_hits += 1
            return node
        _stats.intern_misses += 1
        node = object.__new__(cls)
        node.value = value
        _finish(node, key, _EMPTY_VARS, 1, False)
        return node

    def __reduce__(self):
        return (_reintern, (1, self.value))

    def __repr__(self) -> str:
        return str(self.value)


class BoolConst(Term):
    """A boolean literal (``true`` / ``false``)."""

    __slots__ = ("value",)

    def __new__(cls, value: bool) -> "BoolConst":
        if value.__class__ is not bool:
            value = bool(value)
        key = (0, value)
        node = _table.get(key)
        if node is not None:
            _stats.intern_hits += 1
            return node
        _stats.intern_misses += 1
        node = object.__new__(cls)
        node.value = value
        _finish(node, key, _EMPTY_VARS, 1, False)
        return node

    def __reduce__(self):
        return (_reintern, (0, self.value))

    def __repr__(self) -> str:
        return "true" if self.value else "false"


class Var(Term):
    """An integer-sorted variable, identified by name."""

    __slots__ = ("name",)

    def __new__(cls, name: str) -> "Var":
        key = (2, name)
        node = _table.get(key)
        if node is not None:
            _stats.intern_hits += 1
            return node
        _stats.intern_misses += 1
        node = object.__new__(cls)
        node.name = name
        _finish(node, key, frozenset((name,)), 1, False)
        return node

    def __reduce__(self):
        return (_reintern, (2, self.name))

    def __repr__(self) -> str:
        return self.name


class Add(Term):
    """N-ary integer addition."""

    __slots__ = ("args",)

    def __new__(cls, args: tuple) -> "Add":
        key = (3, args)
        node = _table.get(key)
        if node is not None:
            _stats.intern_hits += 1
            return node
        _stats.intern_misses += 1
        node = object.__new__(cls)
        node.args = args
        size = 1
        arrays = False
        for a in args:
            size += a.size
            arrays |= a.has_arrays
        _finish(node, key, _union_vars(args), size, arrays)
        return node

    def __reduce__(self):
        return (_reintern, (3, self.args))

    def __repr__(self) -> str:
        return "(" + " + ".join(map(repr, self.args)) + ")"


class Mul(Term):
    """Multiplication of a term by an integer coefficient (linear only)."""

    __slots__ = ("coeff", "arg")

    def __new__(cls, coeff: int, arg: Term) -> "Mul":
        if coeff.__class__ is not int:
            coeff = int(coeff)
        key = (5, coeff, arg)
        node = _table.get(key)
        if node is not None:
            _stats.intern_hits += 1
            return node
        _stats.intern_misses += 1
        node = object.__new__(cls)
        node.coeff = coeff
        node.arg = arg
        _finish(node, key, arg.free_vars, 1 + arg.size, arg.has_arrays)
        return node

    def __reduce__(self):
        return (_reintern, (5, self.coeff, self.arg))

    def __repr__(self) -> str:
        return f"{self.coeff}*{self.arg!r}"


class Ite(Term):
    """Integer-sorted if-then-else."""

    __slots__ = ("cond", "then", "else_")

    def __new__(cls, cond: Term, then: Term, else_: Term) -> "Ite":
        key = (7, cond, then, else_)
        node = _table.get(key)
        if node is not None:
            _stats.intern_hits += 1
            return node
        _stats.intern_misses += 1
        node = object.__new__(cls)
        node.cond = cond
        node.then = then
        node.else_ = else_
        _finish(
            node,
            key,
            _union_vars((cond, then, else_)),
            1 + cond.size + then.size + else_.size,
            cond.has_arrays or then.has_arrays or else_.has_arrays,
        )
        return node

    def __reduce__(self):
        return (_reintern, (7, self.cond, self.then, self.else_))

    def __repr__(self) -> str:
        return f"ite({self.cond!r}, {self.then!r}, {self.else_!r})"


class AVar(Term):
    """An array-sorted variable (int -> int); models the heap (§8)."""

    __slots__ = ("name",)

    def __new__(cls, name: str) -> "AVar":
        key = (8, name)
        node = _table.get(key)
        if node is not None:
            _stats.intern_hits += 1
            return node
        _stats.intern_misses += 1
        node = object.__new__(cls)
        node.name = name
        _finish(node, key, frozenset((name,)), 1, True)
        return node

    def __reduce__(self):
        return (_reintern, (8, self.name))

    def __repr__(self) -> str:
        return self.name


class Select(Term):
    """Array read ``array[index]`` (int-sorted)."""

    __slots__ = ("array", "index")

    def __new__(cls, array: Term, index: Term) -> "Select":
        key = (11, array, index)
        node = _table.get(key)
        if node is not None:
            _stats.intern_hits += 1
            return node
        _stats.intern_misses += 1
        node = object.__new__(cls)
        node.array = array
        node.index = index
        _finish(
            node,
            key,
            _union_vars((array, index)),
            1 + array.size + index.size,
            True,
        )
        return node

    def __reduce__(self):
        return (_reintern, (11, self.array, self.index))

    def __repr__(self) -> str:
        return f"{self.array!r}[{self.index!r}]"


class Store(Term):
    """Array write ``array[index := value]`` (array-sorted)."""

    __slots__ = ("array", "index", "value")

    def __new__(cls, array: Term, index: Term, value: Term) -> "Store":
        key = (13, array, index, value)
        node = _table.get(key)
        if node is not None:
            _stats.intern_hits += 1
            return node
        _stats.intern_misses += 1
        node = object.__new__(cls)
        node.array = array
        node.index = index
        node.value = value
        _finish(
            node,
            key,
            _union_vars((array, index, value)),
            1 + array.size + index.size + value.size,
            True,
        )
        return node

    def __reduce__(self):
        return (_reintern, (13, self.array, self.index, self.value))

    def __repr__(self) -> str:
        return f"{self.array!r}[{self.index!r} := {self.value!r}]"


class _BinAtom(Term):
    """Shared interning machinery for the two binary atoms."""

    __slots__ = ("lhs", "rhs")
    _TAG = 0

    def __new__(cls, lhs: Term, rhs: Term):
        key = (cls._TAG, lhs, rhs)
        node = _table.get(key)
        if node is not None:
            _stats.intern_hits += 1
            return node
        _stats.intern_misses += 1
        node = object.__new__(cls)
        node.lhs = lhs
        node.rhs = rhs
        _finish(
            node,
            key,
            _union_vars((lhs, rhs)),
            1 + lhs.size + rhs.size,
            lhs.has_arrays or rhs.has_arrays,
        )
        return node

    def __reduce__(self):
        return (_reintern, (self._TAG, self.lhs, self.rhs))


class Le(_BinAtom):
    """Atom ``lhs <= rhs`` over integer terms."""

    __slots__ = ()
    _TAG = 17

    def __repr__(self) -> str:
        return f"({self.lhs!r} <= {self.rhs!r})"


class Eq(_BinAtom):
    """Atom ``lhs == rhs`` over integer terms."""

    __slots__ = ()
    _TAG = 19

    def __repr__(self) -> str:
        return f"({self.lhs!r} == {self.rhs!r})"


class Not(Term):
    __slots__ = ("arg",)

    def __new__(cls, arg: Term) -> "Not":
        key = (23, arg)
        node = _table.get(key)
        if node is not None:
            _stats.intern_hits += 1
            return node
        _stats.intern_misses += 1
        node = object.__new__(cls)
        node.arg = arg
        _finish(node, key, arg.free_vars, 1 + arg.size, arg.has_arrays)
        return node

    def __reduce__(self):
        return (_reintern, (23, self.arg))

    def __repr__(self) -> str:
        return f"!{self.arg!r}"


class _NaryBool(Term):
    """Shared interning machinery for the n-ary connectives."""

    __slots__ = ("args",)
    _TAG = 0

    def __new__(cls, args: tuple):
        key = (cls._TAG, args)
        node = _table.get(key)
        if node is not None:
            _stats.intern_hits += 1
            return node
        _stats.intern_misses += 1
        node = object.__new__(cls)
        node.args = args
        size = 1
        arrays = False
        for a in args:
            size += a.size
            arrays |= a.has_arrays
        _finish(node, key, _union_vars(args), size, arrays)
        return node

    def __reduce__(self):
        return (_reintern, (self._TAG, self.args))


class And(_NaryBool):
    __slots__ = ()
    _TAG = 29

    def __repr__(self) -> str:
        return "(" + " && ".join(map(repr, self.args)) + ")"


class Or(_NaryBool):
    __slots__ = ()
    _TAG = 31

    def __repr__(self) -> str:
        return "(" + " || ".join(map(repr, self.args)) + ")"


#: pickle tag -> constructor; :func:`_reintern` routes unpickled nodes
#: back through ``__new__`` so they land in this process's intern table
_NODE_TYPES: dict[int, type] = {
    0: BoolConst,
    1: IntConst,
    2: Var,
    3: Add,
    5: Mul,
    7: Ite,
    8: AVar,
    11: Select,
    13: Store,
    17: Le,
    19: Eq,
    23: Not,
    29: And,
    31: Or,
}


def _reintern(tag: int, *fields) -> Term:
    """Pickle/deepcopy hook: rebuild through the interner.

    Child terms in *fields* have already been re-interned by their own
    ``__reduce__`` round-trips, so the constructor call below is a plain
    table lookup whenever the structure already exists in this process.
    """
    _stats.reintern_count += 1
    return _NODE_TYPES[tag](*fields)


TRUE = BoolConst(True)
FALSE = BoolConst(False)
ZERO = IntConst(0)
ONE = IntConst(1)

#: strongly held so the hottest constants never churn through the weak table
_SMALL_INTS = tuple(IntConst(v) for v in range(-64, 257))


# ---------------------------------------------------------------------------
# Smart constructors
# ---------------------------------------------------------------------------

def intc(value: int) -> IntConst:
    """Integer constant."""
    return IntConst(value)


def boolc(value: bool) -> BoolConst:
    return TRUE if value else FALSE


def var(name: str) -> Var:
    return Var(name)


def add(*args: Term) -> Term:
    """Sum of integer terms, folding constants and flattening nested sums."""
    flat: list[Term] = []
    const = 0
    for a in args:
        if isinstance(a, Add):
            flat.extend(a.args)
        else:
            flat.append(a)
    terms: list[Term] = []
    for a in flat:
        if isinstance(a, IntConst):
            const += a.value
        elif isinstance(a, Mul) and a.coeff == 0:
            pass
        else:
            terms.append(a)
    if const != 0 or not terms:
        terms.append(IntConst(const))
    if len(terms) == 1:
        return terms[0]
    return Add(tuple(terms))


def mul(coeff: int, arg: Term) -> Term:
    """Product of an integer coefficient and a term."""
    if coeff == 0:
        return ZERO
    if coeff == 1:
        return arg
    if isinstance(arg, IntConst):
        return IntConst(coeff * arg.value)
    if isinstance(arg, Mul):
        return mul(coeff * arg.coeff, arg.arg)
    if isinstance(arg, Add):
        return add(*(mul(coeff, a) for a in arg.args))
    return Mul(coeff, arg)


def sub(lhs: Term, rhs: Term) -> Term:
    return add(lhs, mul(-1, rhs))


def neg(arg: Term) -> Term:
    return mul(-1, arg)


def ite(cond: Term, then: Term, else_: Term) -> Term:
    if isinstance(cond, BoolConst):
        return then if cond.value else else_
    if then is else_:
        return then
    return Ite(cond, then, else_)


def avar(name: str) -> AVar:
    return AVar(name)


def select(array: Term, index: Term) -> Term:
    """Array read with read-over-write simplification.

    ``store(a, i, v)[j]`` rewrites to ``ite(i == j, v, a[j])`` — after
    full rewriting only reads on array *variables* remain, which the
    solver Ackermannizes (see :mod:`repro.logic.arrays`).
    """
    if isinstance(array, Store):
        same = eq(array.index, index)
        if same is TRUE:
            return array.value
        if same is FALSE:
            return select(array.array, index)
        return ite(same, array.value, select(array.array, index))
    return Select(array, index)


def store(array: Term, index: Term, value: Term) -> Term:
    """Array write; consecutive writes to the same index collapse."""
    if isinstance(array, Store) and array.index is index:
        return Store(array.array, index, value)
    return Store(array, index, value)


def le(lhs: Term, rhs: Term) -> Term:
    diff = sub(lhs, rhs)
    if isinstance(diff, IntConst):
        return boolc(diff.value <= 0)
    return Le(lhs, rhs)


def lt(lhs: Term, rhs: Term) -> Term:
    # over integers, a < b  iff  a + 1 <= b
    return le(add(lhs, ONE), rhs)


def ge(lhs: Term, rhs: Term) -> Term:
    return le(rhs, lhs)


def gt(lhs: Term, rhs: Term) -> Term:
    return lt(rhs, lhs)


def eq(lhs: Term, rhs: Term) -> Term:
    if lhs is rhs:
        return TRUE
    diff = sub(lhs, rhs)
    if isinstance(diff, IntConst):
        return boolc(diff.value == 0)
    return Eq(lhs, rhs)


def ne(lhs: Term, rhs: Term) -> Term:
    return not_(eq(lhs, rhs))


def not_(arg: Term) -> Term:
    if isinstance(arg, BoolConst):
        return boolc(not arg.value)
    if isinstance(arg, Not):
        return arg.arg
    return Not(arg)


def and_(*args: Term) -> Term:
    flat: list[Term] = []
    for a in args:
        if isinstance(a, And):
            flat.extend(a.args)
        elif a is TRUE:
            pass
        elif a is FALSE:
            return FALSE
        else:
            flat.append(a)
    seen: list[Term] = []
    for a in flat:
        if a not in seen:
            if not_(a) in seen:
                return FALSE
            seen.append(a)
    if not seen:
        return TRUE
    if len(seen) == 1:
        return seen[0]
    return And(tuple(seen))


def or_(*args: Term) -> Term:
    flat: list[Term] = []
    for a in args:
        if isinstance(a, Or):
            flat.extend(a.args)
        elif a is FALSE:
            pass
        elif a is TRUE:
            return TRUE
        else:
            flat.append(a)
    seen: list[Term] = []
    for a in flat:
        if a not in seen:
            if not_(a) in seen:
                return TRUE
            seen.append(a)
    if not seen:
        return FALSE
    if len(seen) == 1:
        return seen[0]
    return Or(tuple(seen))


def implies(lhs: Term, rhs: Term) -> Term:
    return or_(not_(lhs), rhs)


def iff(lhs: Term, rhs: Term) -> Term:
    return and_(implies(lhs, rhs), implies(rhs, lhs))


# ---------------------------------------------------------------------------
# Traversals
# ---------------------------------------------------------------------------

def free_vars(term: Term) -> frozenset[str]:
    """The set of variable names occurring in *term*.

    Precomputed per node at interning time; every call is O(1).  Hot
    loops read ``term.free_vars`` directly.
    """
    _stats.free_vars_calls += 1
    return term.free_vars


def node_count(term: Term) -> int:
    """The number of nodes in *term*'s tree (precomputed; query-size metric)."""
    return term.size


_SUBSTITUTE_MEMO_LIMIT = 500_000
_substitute_memo: dict[tuple, Term] = register_kernel_cache({})


def _mapping_key(mapping: Mapping[str, Term]) -> tuple:
    # names are unique within a mapping, so sorting never compares terms
    return tuple(sorted(mapping.items()))


def substitute(term: Term, mapping: Mapping[str, Term]) -> Term:
    """Simultaneously substitute variables by terms.

    Substitution rebuilds the tree through the smart constructors, so
    the result is normalized (e.g. constants fold away).  Subtrees whose
    precomputed ``free_vars`` are disjoint from the mapping are returned
    as-is (rebuilding a canonical node is the identity), and results are
    memoized process-wide by ``(node, mapping)``.
    """
    if not mapping:
        return term
    keys = mapping.keys()
    if term.free_vars.isdisjoint(keys):
        _stats.substitute_hits += 1
        return term
    mkey = _mapping_key(mapping)
    memo = _substitute_memo

    def go(t: Term) -> Term:
        if t.free_vars.isdisjoint(keys):
            return t
        k = (t, mkey)
        hit = memo.get(k)
        if hit is not None:
            _stats.substitute_hits += 1
            return hit
        _stats.substitute_misses += 1
        if isinstance(t, Var):
            out = mapping.get(t.name, t)
        elif isinstance(t, AVar):
            out = mapping.get(t.name, t)
        elif isinstance(t, Select):
            out = select(go(t.array), go(t.index))
        elif isinstance(t, Store):
            out = store(go(t.array), go(t.index), go(t.value))
        elif isinstance(t, Add):
            out = add(*(go(a) for a in t.args))
        elif isinstance(t, Mul):
            out = mul(t.coeff, go(t.arg))
        elif isinstance(t, Not):
            out = not_(go(t.arg))
        elif isinstance(t, And):
            out = and_(*(go(a) for a in t.args))
        elif isinstance(t, Or):
            out = or_(*(go(a) for a in t.args))
        elif isinstance(t, Le):
            out = le(go(t.lhs), go(t.rhs))
        elif isinstance(t, Eq):
            out = eq(go(t.lhs), go(t.rhs))
        elif isinstance(t, Ite):
            out = ite(go(t.cond), go(t.then), go(t.else_))
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown term node: {t!r}")
        if len(memo) < _SUBSTITUTE_MEMO_LIMIT:
            memo[k] = out
        return out

    return go(term)


_rename_maps: dict[tuple, dict[str, Var]] = register_kernel_cache({})


def rename(term: Term, mapping: Mapping[str, str]) -> Term:
    """Substitute variables by variables.

    The name->``Var`` dictionary is memoized per renaming, so repeated
    SSA passes reuse both the interned ``Var`` nodes and the mapping
    object itself.
    """
    key = tuple(sorted(mapping.items()))
    var_map = _rename_maps.get(key)
    if var_map is None:
        var_map = {k: Var(v) for k, v in mapping.items()}
        if len(_rename_maps) < 10_000:
            _rename_maps[key] = var_map
    return substitute(term, var_map)


def evaluate(term: Term, env: Mapping[str, int]):
    """Evaluate *term* under a total integer environment.

    Returns an ``int`` for integer-sorted terms and a ``bool`` for
    boolean-sorted terms.  Raises ``KeyError`` for unbound variables.
    """
    if isinstance(term, IntConst):
        return term.value
    if isinstance(term, BoolConst):
        return term.value
    if isinstance(term, Var):
        return env[term.name]
    if isinstance(term, Add):
        return sum(evaluate(a, env) for a in term.args)
    if isinstance(term, Mul):
        return term.coeff * evaluate(term.arg, env)
    if isinstance(term, Not):
        return not evaluate(term.arg, env)
    if isinstance(term, And):
        return all(evaluate(a, env) for a in term.args)
    if isinstance(term, Or):
        return any(evaluate(a, env) for a in term.args)
    if isinstance(term, Le):
        return evaluate(term.lhs, env) <= evaluate(term.rhs, env)
    if isinstance(term, Eq):
        return evaluate(term.lhs, env) == evaluate(term.rhs, env)
    if isinstance(term, Ite):
        branch = term.then if evaluate(term.cond, env) else term.else_
        return evaluate(branch, env)
    if isinstance(term, AVar):
        # array values are mappings index -> value (missing cells are 0)
        return env[term.name]
    if isinstance(term, Select):
        array = evaluate(term.array, env)
        return dict(array).get(evaluate(term.index, env), 0)
    if isinstance(term, Store):
        array = dict(evaluate(term.array, env))
        array[evaluate(term.index, env)] = evaluate(term.value, env)
        return tuple(sorted(array.items()))
    raise TypeError(f"unknown term node: {term!r}")


#: ``nid`` → evaluation closure; nids are never reused, so entries can
#: never be wrong.  The Ite/array fallback closures capture their term,
#: so the memo is kernel-registered and emptied at compaction.
_eval_fns: dict[int, object] = register_kernel_cache({})


def compile_eval(term: Term):
    """Compile *term* into an ``env -> value`` closure (memoized by nid).

    Exactly :func:`evaluate`'s semantics — same short-circuiting, same
    ``KeyError`` on unbound variables — but the isinstance dispatch is
    paid once per distinct node instead of once per evaluation.  The
    solver's model pool probes the same formula against up to 64 cached
    models; this makes each probe a plain closure call.
    """
    fn = _eval_fns.get(term.nid)
    if fn is not None:
        return fn
    if isinstance(term, IntConst):
        value = term.value
        fn = lambda env, _v=value: _v  # noqa: E731
    elif isinstance(term, BoolConst):
        value = term.value
        fn = lambda env, _v=value: _v  # noqa: E731
    elif isinstance(term, Var):
        name = term.name
        fn = lambda env, _n=name: env[_n]  # noqa: E731
    elif isinstance(term, Add):
        subs = tuple(compile_eval(a) for a in term.args)
        fn = lambda env, _s=subs: sum(f(env) for f in _s)  # noqa: E731
    elif isinstance(term, Mul):
        coeff, arg = term.coeff, compile_eval(term.arg)
        fn = lambda env, _k=coeff, _a=arg: _k * _a(env)  # noqa: E731
    elif isinstance(term, Not):
        arg = compile_eval(term.arg)
        fn = lambda env, _a=arg: not _a(env)  # noqa: E731
    elif isinstance(term, And):
        subs = tuple(compile_eval(a) for a in term.args)
        fn = lambda env, _s=subs: all(f(env) for f in _s)  # noqa: E731
    elif isinstance(term, Or):
        subs = tuple(compile_eval(a) for a in term.args)
        fn = lambda env, _s=subs: any(f(env) for f in _s)  # noqa: E731
    elif isinstance(term, Le):
        lhs, rhs = compile_eval(term.lhs), compile_eval(term.rhs)
        fn = lambda env, _l=lhs, _r=rhs: _l(env) <= _r(env)  # noqa: E731
    elif isinstance(term, Eq):
        lhs, rhs = compile_eval(term.lhs), compile_eval(term.rhs)
        fn = lambda env, _l=lhs, _r=rhs: _l(env) == _r(env)  # noqa: E731
    else:
        # Ite / arrays: rare in pool probes — fall back to the interpreter
        fn = lambda env, _t=term: evaluate(_t, env)  # noqa: E731
    if len(_eval_fns) < 200_000:
        _eval_fns[term.nid] = fn
    return fn


_fresh_counter = itertools.count()


def fresh_var(prefix: str = "aux") -> Var:
    """A variable with a globally unique name (used for havoc / QE)."""
    return Var(f"{prefix}!{next(_fresh_counter)}")


def is_bool_sorted(term: Term) -> bool:
    """True if *term* is a formula (boolean-sorted)."""
    return isinstance(term, (BoolConst, Not, And, Or, Le, Eq))
