"""The one worklist engine behind every on-the-fly exploration.

Historically the repo grew three hand-rolled search loops — plain
breadth-first reachability in :mod:`repro.automata.lazy`, and a BFS and
a DFS variant inside the proof checker — with divergent budget,
deadline, and statistics handling.  This module is their single
replacement: one engine, two strategies (``"bfs"`` | ``"dfs"``), owning

* the seen set and the state budget (one typed exception hierarchy,
  :class:`BudgetExceeded`, instead of ``ExplorationLimit`` here and a
  bare ``MemoryError`` there);
* tick-batched deadline checks (one ``time.perf_counter()`` call every
  ``tick_interval`` worklist pops, module-level import — nothing is
  imported inside the search loop);
* parent-trace reconstruction (BFS) / path tracking (DFS);
* the DFS grey-cut taint rule plus a pluggable useless-state hook
  (the §7.2 cross-round cache slots in as a strategy hook);
* per-state discovery callbacks and engine counters
  (:class:`EngineStats`), surfaced through ``QueryStats``/reporting.

Every client — :func:`repro.automata.lazy.explore`, the reduction
automata, ``ProofChecker`` — describes *what* to search (successors,
goal, cover predicate) and delegates *how* to this engine.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Generic, Hashable, Iterable, Protocol, TypeVar

State = TypeVar("State", bound=Hashable)
Letter = TypeVar("Letter", bound=Hashable)

STRATEGIES = ("bfs", "dfs")

#: deadline checks are batched: one wall-clock read per this many pops
DEADLINE_TICK_INTERVAL = 128


class BudgetExceeded(Exception):
    """Base of the engine's resource-budget exception hierarchy."""


class StateBudgetExceeded(BudgetExceeded, MemoryError):
    """The exploration grew past its ``max_states`` budget.

    Also a ``MemoryError``: the proof checker historically raised a bare
    ``MemoryError`` here and the ``verify()`` boundary (and external
    callers) still catch it as such.
    """


class DeadlineExceeded(Exception):
    """The exploration's wall-clock deadline expired mid-search.

    Deliberately *not* a :class:`BudgetExceeded`: running out of time is
    a TIMEOUT at the verifier boundary, running out of states is not.
    """


class UselessStateHook(Protocol):
    """The DFS strategy hook for cross-round useless-state caching (§7.2).

    ``is_useless`` is consulted before a state is first visited; a True
    answer prunes the subtree.  ``mark`` is called when the DFS *leaves*
    a state whose entire subtree was explored without being cut at a
    grey node (a cycle back into the current path) — only such states
    may soundly be recorded as useless.
    """

    def is_useless(self, state) -> bool: ...

    def mark(self, state) -> None: ...


@dataclass
class EngineStats:
    """Counters for one engine run (aggregated by the owner across runs)."""

    states_explored: int = 0
    deadline_ticks: int = 0  # wall-clock reads performed (batched)
    # warm-started BFS runs only: pops served from the warm hook vs
    # pops that fell through to a live goal-check + expansion
    warm_hits: int = 0
    warm_misses: int = 0


@dataclass
class ExplorationLog:
    """What a recorded BFS run saw — the raw material for a warm start.

    ``edges`` maps every *expanded* state to its full generated edge
    list, including edges into already-seen states (a replay needs the
    complete successor relation, not just the discovery tree).  States
    in the seen set but absent from ``edges`` were discovered without
    being expanded (covered, goal, or still queued at the stop).
    """

    edges: dict = field(default_factory=dict)


@dataclass
class SearchResult(Generic[State, Letter]):
    """Outcome of one :meth:`WorklistEngine.run`.

    ``goal_state``/``trace`` are ``None`` when the search exhausted the
    state space without the goal predicate firing; ``seen`` is the set
    of discovered states (shared, not copied — read-only by convention).
    """

    goal_state: State | None
    trace: tuple[Letter, ...] | None
    seen: set[State]
    stats: EngineStats
    #: present when the engine ran with ``record=True`` (BFS only)
    log: ExplorationLog | None = None

    @property
    def states_explored(self) -> int:
        return self.stats.states_explored


class WorklistEngine(Generic[State, Letter]):
    """One search loop for everything that explores a lazy automaton.

    Parameters
    ----------
    successors:
        ``state -> iterable of (letter, successor)`` — typically a
        reduction pipeline's successor function.
    strategy:
        ``"bfs"`` (queue; shortest goal trace) or ``"dfs"`` (stack;
        Algorithm 2 order, supports the useless-state hook).
    max_states:
        Seen-set budget; exceeding it raises *budget_error*.
    deadline:
        Absolute ``time.perf_counter()`` timestamp; checked once every
        ``tick_interval`` pops, raising *deadline_error*.
    on_discover:
        Called exactly once per state, when it enters the seen set
        (BFS: at generation, including the initial state; DFS: at first
        visit) — the per-state stats callback.
    should_expand:
        Cover predicate: a popped state with ``should_expand(state)``
        False contributes no successors (e.g. ⊥-covered proof states).
        The goal predicate is still evaluated first.
    useless:
        DFS-only :class:`UselessStateHook`; ignored under BFS.
    warm:
        BFS-only warm-start hook: ``state -> list of (letter, successor)
        | None``.  A popped state for which it returns a list is served
        those successors *verbatim* — no goal check, no cover check, no
        live successor call.  Sound exactly when the hook only answers
        for states known (from a previous recorded run) to be neither a
        goal nor covered with an unchanged successor list; the BFS
        queue order — and therefore the discovered counterexample — is
        bit-identical to a cold run, because the successor streams are.
        Two producers satisfy that contract today: the same-run warm
        start (previous round's recorded edges, PR 5) and cross-run
        delta replay (a baseline version's persisted edge streams,
        gated per state on the edit — see ``repro.delta.replay``).
    """

    def __init__(
        self,
        successors: Callable[[State], Iterable[tuple[Letter, State]]],
        *,
        strategy: str = "bfs",
        max_states: int | None = None,
        deadline: float | None = None,
        tick_interval: int = DEADLINE_TICK_INTERVAL,
        budget_error: type[Exception] = StateBudgetExceeded,
        budget_message: str = "exploration exceeded its state budget",
        deadline_error: type[Exception] = DeadlineExceeded,
        on_discover: Callable[[State], None] | None = None,
        should_expand: Callable[[State], bool] | None = None,
        on_edge: Callable[[State, Letter, State], None] | None = None,
        useless: UselessStateHook | None = None,
        record: bool = False,
        warm: Callable[[State], "list[tuple[Letter, State]] | None"] | None = None,
    ) -> None:
        if strategy not in STRATEGIES:
            raise ValueError(
                f"unknown search strategy {strategy!r}; expected one of {STRATEGIES}"
            )
        if warm is not None and strategy != "bfs":
            raise ValueError("warm-start hook is only supported for bfs")
        self.successors = successors
        self.strategy = strategy
        self.max_states = max_states
        self.deadline = deadline
        self.tick_interval = tick_interval
        self.budget_error = budget_error
        self.budget_message = budget_message
        self.deadline_error = deadline_error
        self.on_discover = on_discover
        self.should_expand = should_expand
        self.on_edge = on_edge
        self.useless = useless
        #: collect an :class:`ExplorationLog` (BFS only); off by default
        #: so the recording bookkeeping costs nothing on the plain path
        self.record = record
        self.warm = warm
        self.stats = EngineStats()

    # -- shared plumbing ----------------------------------------------------

    def _check_deadline(self) -> None:
        if self.deadline is not None:
            self.stats.deadline_ticks += 1
            if time.perf_counter() > self.deadline:
                raise self.deadline_error()

    def _check_budget(self, seen_size: int) -> None:
        if self.max_states is not None and seen_size > self.max_states:
            raise self.budget_error(self.budget_message)

    # -- the engine ---------------------------------------------------------

    def run(
        self,
        initial: State,
        goal: Callable[[State], bool] | None = None,
    ) -> SearchResult[State, Letter]:
        """Search from *initial* until *goal* fires or the space is done."""
        if self.strategy == "bfs":
            return self._run_bfs(initial, goal)
        return self._run_dfs(initial, goal)

    def _run_bfs(
        self,
        initial: State,
        goal: Callable[[State], bool] | None,
    ) -> SearchResult[State, Letter]:
        discover = self.on_discover
        expand = self.should_expand
        on_edge = self.on_edge
        warm = self.warm
        log = ExplorationLog() if self.record else None
        seen: set[State] = {initial}
        if discover is not None:
            discover(initial)
        parent: dict[State, tuple[State, Letter]] = {}
        queue: deque[State] = deque([initial])
        ticks = 0
        while queue:
            state = queue.popleft()
            ticks += 1
            if ticks % self.tick_interval == 0:
                self._check_deadline()
            cached = warm(state) if warm is not None else None
            if cached is None:
                if warm is not None:
                    self.stats.warm_misses += 1
                if goal is not None and goal(state):
                    return self._finish(state, _trace_to(parent, state), seen, log)
                if expand is not None and not expand(state):
                    continue
                successors: Iterable[tuple[Letter, State]] = self.successors(state)
            else:
                # warm-served state: known from the recorded run to be
                # neither a goal nor covered, successor list verbatim
                self.stats.warm_hits += 1
                successors = cached
            edges: list[tuple[Letter, State]] | None = (
                [] if log is not None else None
            )
            for a, nxt in successors:
                if on_edge is not None:
                    on_edge(state, a, nxt)
                if edges is not None:
                    edges.append((a, nxt))
                if nxt in seen:
                    continue
                seen.add(nxt)
                self._check_budget(len(seen))
                if discover is not None:
                    discover(nxt)
                parent[nxt] = (state, a)
                queue.append(nxt)
            if log is not None:
                log.edges[state] = edges
        return self._finish(None, None, seen, log)

    def _run_dfs(
        self,
        initial: State,
        goal: Callable[[State], bool] | None,
    ) -> SearchResult[State, Letter]:
        discover = self.on_discover
        expand = self.should_expand
        useless = self.useless
        seen: set[State] = set()
        on_stack: set[State] = set()
        tainted: set[State] = set()
        path: list[Letter] = []
        # frames: ("visit" | "leave", state, incoming letter, parent state)
        stack: list[tuple] = [("visit", initial, None, None)]
        ticks = 0
        while stack:
            kind, state, letter, parent = stack.pop()
            ticks += 1
            if ticks % self.tick_interval == 0:
                self._check_deadline()
            if kind == "leave":
                if letter is not None:
                    path.pop()
                on_stack.discard(state)
                if state in tainted:
                    # the subtree was cut at a grey node somewhere below:
                    # the taint propagates to the parent, and the state
                    # must not be recorded as useless
                    if parent is not None:
                        tainted.add(parent)
                elif useless is not None:
                    useless.mark(state)
                continue
            if state in seen:
                if state in on_stack or state in tainted:
                    # grey cut (a cycle back into the current path) or a
                    # known-tainted child: the parent's subtree is not
                    # fully explored through this edge
                    if parent is not None:
                        tainted.add(parent)
                continue
            if useless is not None and useless.is_useless(state):
                continue
            seen.add(state)
            self._check_budget(len(seen))
            if discover is not None:
                discover(state)
            if letter is not None:
                path.append(letter)
            if goal is not None and goal(state):
                return self._finish(state, tuple(path), seen)
            on_stack.add(state)
            stack.append(("leave", state, letter, parent))
            if expand is not None and not expand(state):
                continue
            successors = self.successors(state)
            if not isinstance(successors, (list, tuple)):
                successors = list(successors)
            for a, nxt in reversed(successors):
                stack.append(("visit", nxt, a, state))
        return self._finish(None, None, seen)

    def _finish(
        self,
        goal_state: State | None,
        trace: tuple[Letter, ...] | None,
        seen: set[State],
        log: ExplorationLog | None = None,
    ) -> SearchResult[State, Letter]:
        self.stats.states_explored = len(seen)
        return SearchResult(goal_state, trace, seen, self.stats, log)


def _trace_to(
    parent: dict[State, tuple[State, Letter]], state: State
) -> tuple[Letter, ...]:
    """Reconstruct the letters from the initial state to *state*."""
    trace: list[Letter] = []
    while state in parent:
        state, letter = parent[state]
        trace.append(letter)
    trace.reverse()
    return tuple(trace)
