"""Unit tests for the term language and smart constructors."""

from repro.logic import (
    FALSE,
    TRUE,
    add,
    and_,
    boolc,
    eq,
    evaluate,
    free_vars,
    ge,
    iff,
    implies,
    intc,
    ite,
    le,
    lt,
    mul,
    ne,
    not_,
    or_,
    rename,
    sub,
    substitute,
    var,
)
from repro.logic.terms import Add, And, IntConst, Le, Or, compile_eval


x, y, z = var("x"), var("y"), var("z")


class TestArithmeticConstructors:
    def test_add_folds_constants(self):
        assert add(intc(2), intc(3)) == intc(5)

    def test_add_flattens(self):
        t = add(add(x, y), z)
        assert isinstance(t, Add)
        assert t.args == (x, y, z)

    def test_add_drops_zero(self):
        assert add(x, intc(0)) == x

    def test_add_empty_is_zero(self):
        assert add() == intc(0)

    def test_mul_by_zero(self):
        assert mul(0, x) == intc(0)

    def test_mul_by_one(self):
        assert mul(1, x) == x

    def test_mul_distributes_over_add(self):
        t = mul(2, add(x, intc(3)))
        assert evaluate(t, {"x": 5}) == 16

    def test_mul_collapses_nested(self):
        t = mul(2, mul(3, x))
        assert evaluate(t, {"x": 1}) == 6

    def test_sub(self):
        assert evaluate(sub(x, y), {"x": 7, "y": 4}) == 3


class TestBooleanConstructors:
    def test_and_true_identity(self):
        assert and_(TRUE, le(x, y)) == le(x, y)

    def test_and_false_annihilates(self):
        assert and_(le(x, y), FALSE) == FALSE

    def test_and_dedups(self):
        a = le(x, y)
        assert and_(a, a) == a

    def test_and_detects_contradiction(self):
        a = le(x, y)
        assert and_(a, not_(a)) == FALSE

    def test_or_detects_tautology(self):
        a = le(x, y)
        assert or_(a, not_(a)) == TRUE

    def test_not_involution(self):
        a = le(x, y)
        assert not_(not_(a)) == a

    def test_not_constant(self):
        assert not_(TRUE) == FALSE

    def test_implies_shape(self):
        t = implies(TRUE, le(x, y))
        assert t == le(x, y)

    def test_iff_constants(self):
        assert iff(TRUE, TRUE) == TRUE
        assert iff(TRUE, FALSE) == FALSE

    def test_operator_overloads(self):
        a, b = le(x, y), le(y, z)
        assert (a & b) == and_(a, b)
        assert (a | b) == or_(a, b)
        assert (~a) == not_(a)


class TestComparisons:
    def test_le_constant_fold(self):
        assert le(intc(1), intc(2)) == TRUE
        assert le(intc(3), intc(2)) == FALSE

    def test_lt_is_integer_shifted_le(self):
        t = lt(x, y)
        assert evaluate(t, {"x": 1, "y": 2})
        assert not evaluate(t, {"x": 2, "y": 2})

    def test_eq_reflexive(self):
        assert eq(x, x) == TRUE

    def test_eq_constant_fold(self):
        assert eq(intc(2), intc(2)) == TRUE
        assert eq(intc(2), intc(3)) == FALSE

    def test_ne(self):
        assert evaluate(ne(x, y), {"x": 1, "y": 2})

    def test_ge(self):
        assert evaluate(ge(x, y), {"x": 3, "y": 2})


class TestIte:
    def test_ite_constant_cond(self):
        assert ite(TRUE, x, y) == x
        assert ite(FALSE, x, y) == y

    def test_ite_same_branches(self):
        assert ite(le(x, y), z, z) == z

    def test_ite_evaluation(self):
        t = ite(le(x, y), intc(1), intc(0))
        assert evaluate(t, {"x": 0, "y": 5}) == 1
        assert evaluate(t, {"x": 6, "y": 5}) == 0


class TestTraversals:
    def test_free_vars(self):
        t = and_(le(add(x, y), intc(3)), eq(z, intc(0)))
        assert free_vars(t) == {"x", "y", "z"}

    def test_free_vars_constant(self):
        assert free_vars(TRUE) == frozenset()

    def test_substitute(self):
        t = le(add(x, y), intc(3))
        s = substitute(t, {"x": intc(1)})
        assert free_vars(s) == {"y"}
        assert evaluate(s, {"y": 2})
        assert not evaluate(s, {"y": 3})

    def test_substitute_simultaneous(self):
        # x -> y, y -> x must swap, not chain
        t = sub(x, y)
        s = substitute(t, {"x": y, "y": x})
        assert evaluate(s, {"x": 1, "y": 5}) == 4

    def test_rename(self):
        t = le(x, y)
        assert free_vars(rename(t, {"x": "a"})) == {"a", "y"}

    def test_substitute_empty_is_identity(self):
        t = le(x, y)
        assert substitute(t, {}) is t


class TestCompileEval:
    """compile_eval must agree with evaluate on every node type."""

    TERMS = [
        intc(7),
        TRUE,
        x,
        add(x, mul(3, y), intc(-2)),
        and_(le(x, y), or_(eq(y, z), not_(le(z, x)))),
        ite(le(x, y), add(x, intc(1)), mul(2, z)),
        implies(le(x, intc(0)), eq(y, z)),
    ]

    ENVS = [
        {"x": 0, "y": 0, "z": 0},
        {"x": 1, "y": 2, "z": 3},
        {"x": 5, "y": -5, "z": 2},
        {"x": -1, "y": -1, "z": 7},
    ]

    def test_matches_evaluate(self):
        for t in self.TERMS:
            fn = compile_eval(t)
            for env in self.ENVS:
                assert fn(env) == evaluate(t, env), (t, env)

    def test_memoized_by_nid(self):
        t = add(x, y)
        assert compile_eval(t) is compile_eval(t)

    def test_missing_var_raises_keyerror(self):
        fn = compile_eval(add(x, y))
        try:
            fn({"x": 1})
        except KeyError:
            pass
        else:
            raise AssertionError("expected KeyError, matching evaluate")
