"""Sleep set automaton tests on explicit DFAs (§5, Example 5.2 style)."""

import pytest

from repro.automata import DFA, materialize
from repro.core import (
    DfaBase,
    FullCommutativity,
    SleepSetAutomaton,
    SyntacticCommutativity,
    ThreadUniformOrder,
)
from repro.core.mazurkiewicz import partition_into_classes
from repro.core.preference import RandomOrder, minimal_word
from repro.lang import assign
from repro.logic import intc

# letters: a1, a2 in thread 0; b1, b2 in thread 1 (ai ↷↷ bj under full
# commutativity, matching the Figure 3 setup)
A1 = assign(0, "x", intc(1))
A2 = assign(0, "x", intc(2))
B1 = assign(1, "y", intc(1))
B2 = assign(1, "y", intc(2))


def diamond_dfa() -> DFA:
    """Accepts {a1 b1, b1 a1} — one commuting diamond."""
    return DFA.build(
        alphabet={A1, B1},
        transitions={
            (0, A1): 1,
            (0, B1): 2,
            (1, B1): 3,
            (2, A1): 3,
        },
        initial=0,
        finals={3},
    )


def shuffle_dfa() -> DFA:
    """The shuffle of L0 = {a1, a1 a2} and L1 = {b1 b2}.

    A shuffle of per-thread languages is Mazurkiewicz-closed by
    construction (Theorem 5.3's precondition); this one has branching
    (the optional a2) like Figure 3's input.
    """
    # thread 0: 0 -a1-> 1 -a2-> 2, accepting {1, 2}
    # thread 1: 0 -b1-> 1 -b2-> 2, accepting {2}
    t0 = {(0, A1): 1, (1, A2): 2}
    t1 = {(0, B1): 1, (1, B2): 2}
    transitions = {}
    for q0 in range(3):
        for q1 in range(3):
            for (src, letter), dst in t0.items():
                if src == q0:
                    transitions[((q0, q1), letter)] = (dst, q1)
            for (src, letter), dst in t1.items():
                if src == q1:
                    transitions[((q0, q1), letter)] = (q0, dst)
    finals = {(q0, 2) for q0 in (1, 2)}
    return DFA.build({A1, A2, B1, B2}, transitions, (0, 0), finals)


class TestDiamond:
    def test_prunes_dominated_order(self):
        sleeper = SleepSetAutomaton(
            DfaBase(diamond_dfa()), ThreadUniformOrder(), FullCommutativity()
        )
        dfa = materialize(sleeper, {A1, B1})
        words = dfa.language_up_to(2)
        assert words == {(A1, B1)}  # b1 a1 pruned: a1 < b1 and they commute

    def test_no_commutativity_keeps_both(self):
        class NoCommute:
            def commute(self, a, b):
                return False

        sleeper = SleepSetAutomaton(
            DfaBase(diamond_dfa()), ThreadUniformOrder(), NoCommute()
        )
        dfa = materialize(sleeper, {A1, B1})
        assert dfa.language_up_to(2) == {(A1, B1), (B1, A1)}


class TestGeneralDfa:
    @pytest.mark.parametrize("seed", [None, 0, 1, 2])
    def test_exact_reduction_language(self, seed):
        """Theorem 5.3 on a DFA with branches and a join."""
        base = shuffle_dfa()
        if seed is None:
            order = ThreadUniformOrder()
        else:
            order = RandomOrder([A1, A2, B1, B2], seed)
        rel = SyntacticCommutativity()
        sleeper = SleepSetAutomaton(DfaBase(base), order, rel)
        reduced = materialize(sleeper, base.alphabet)
        full_words = base.language_up_to(4)
        reduced_words = reduced.language_up_to(4)
        assert reduced_words <= full_words
        for cls in partition_into_classes(full_words, rel):
            reps = cls & reduced_words
            assert len(reps) == 1
            (rep,) = reps
            assert rep == minimal_word(order, cls)

    def test_states_may_duplicate(self):
        """Sleep sets distinguish states by their sleep set (§5)."""
        base = shuffle_dfa()
        sleeper = SleepSetAutomaton(
            DfaBase(base), ThreadUniformOrder(), SyntacticCommutativity()
        )
        reduced = materialize(sleeper, base.alphabet)
        base_states = {q for (q, _s, _c) in reduced.states()}
        # every reduced state projects to a base state
        assert base_states <= base.states()


class TestDfaBaseAdapter:
    def test_roundtrip(self):
        base = diamond_dfa()
        adapter = DfaBase(base)
        assert adapter.initial_state() == 0
        assert set(adapter.successors(0)) == {(A1, 1), (B1, 2)}
        assert adapter.is_accepting(3)
        assert not adapter.is_accepting(0)

    def test_rematerialize_equal_language(self):
        base = diamond_dfa()
        rebuilt = materialize(DfaBase(base), base.alphabet)
        assert rebuilt.language_up_to(3) == base.language_up_to(3)
