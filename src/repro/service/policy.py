"""Shared robustness policies for the verification service and runtime.

This module is the one home of the *policy* objects that both the PR 2
parallel portfolio runtime and the long-lived service layer apply to
unreliable work:

* :class:`RetryPolicy` — bounded, escalating, deterministically
  jittered retries (generalized out of ``verifier/runtime.py``; the
  runtime re-exports it unchanged, so ``repro.verifier.RetryPolicy``
  keeps working).
* :class:`AdmissionPolicy` — bounded queue depth and per-tenant
  outstanding-cost budgets, the load-shedding front door.
* :class:`TokenBudget` — a tenant's outstanding-cost account.
* :class:`BreakerPolicy` / :class:`CircuitBreaker` — quarantine of a
  (tenant, corpus-family) key after repeated worker crashes, with a
  half-open probe after a cooldown.

Everything here is deterministic given its inputs: retries are seeded,
budgets are pure arithmetic, and the breaker takes the clock as an
argument (``now``) so tests drive it with a virtual clock.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ..verifier.faults import derive_seed
from ..verifier.stats import Verdict


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded, escalating, deterministically-jittered member retries.

    ``max_attempts`` counts total runs of a member (1 = never retry).
    Each retry multiplies the solver branch/node budgets, the
    verification time budget, and the watchdog deadline by
    ``budget_scale`` (cumulatively), and waits
    ``backoff_seconds * budget_scale**(attempt-1)`` plus a seeded jitter
    before respawning, so a crashing member cannot hot-loop.
    """

    max_attempts: int = 1
    budget_scale: float = 2.0
    backoff_seconds: float = 0.05
    jitter: float = 0.5
    seed: int = 0
    retry_on: frozenset = frozenset(
        {Verdict.UNKNOWN, Verdict.TIMEOUT, Verdict.ERROR}
    )

    def scale(self, attempt: int) -> float:
        """Budget multiplier for *attempt* (1-based; attempt 1 → 1.0)."""
        return self.budget_scale ** (attempt - 1)

    def backoff(self, member: str, attempt: int) -> float:
        """Deterministic jittered pause before respawning *member*."""
        import random

        rng = random.Random(derive_seed(self.seed, f"{member}#{attempt}"))
        base = self.backoff_seconds * self.scale(attempt)
        return base * (1.0 + self.jitter * rng.random())

    def schedule(self, member: str, attempts: int | None = None) -> list[float]:
        """The full backoff schedule for *member* (test/debug preview).

        Replays :meth:`backoff` for attempts ``1..attempts`` (default:
        ``max_attempts``), so two previews of the same policy and member
        always agree — the property the determinism tests pin.
        """
        n = self.max_attempts if attempts is None else attempts
        return [self.backoff(member, attempt) for attempt in range(1, n + 1)]

    def wants_retry(self, verdict: Verdict, attempt: int) -> bool:
        return verdict in self.retry_on and attempt < self.max_attempts


@dataclass(frozen=True)
class AdmissionPolicy:
    """The service's load-shedding front door.

    ``max_queue_depth`` bounds jobs *queued* (not yet running) across
    all tenants; ``max_tenant_outstanding`` bounds one tenant's
    queued + running cost (its default :class:`TokenBudget` capacity).
    Admission never blocks: a submit either enters the journaled queue
    or is shed immediately with a reason the client can act on.
    """

    max_queue_depth: int = 256
    max_tenant_outstanding: int = 64

    #: shed reasons (stable strings — part of the wire protocol)
    SHED_QUEUE_FULL = "queue_full"
    SHED_TENANT_BUDGET = "tenant_budget"
    SHED_BREAKER_OPEN = "breaker_open"
    SHED_DRAINING = "draining"


class TokenBudget:
    """One tenant's outstanding-cost account.

    ``acquire`` is called at admission (cost of the submitted job),
    ``release`` when the job reaches a terminal state.  The budget is
    intentionally *not* time-replenished: it bounds concurrent exposure,
    which is what protects the fleet from one pathological tenant.
    """

    __slots__ = ("capacity", "in_flight")

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.in_flight = 0

    @property
    def available(self) -> int:
        return self.capacity - self.in_flight

    def acquire(self, cost: int = 1) -> bool:
        if self.in_flight + cost > self.capacity:
            return False
        self.in_flight += cost
        return True

    def release(self, cost: int = 1) -> None:
        self.in_flight = max(0, self.in_flight - cost)


@dataclass(frozen=True)
class BreakerPolicy:
    """Tunables of the per-(tenant, family) circuit breaker."""

    #: worker crashes within ``window_seconds`` that open the breaker
    threshold: int = 3
    window_seconds: float = 30.0
    #: how long an open breaker rejects before allowing one probe
    cooldown_seconds: float = 5.0


class CircuitBreaker:
    """Quarantine keys (tenant or corpus family) that keep killing workers.

    States per key: *closed* (normal), *open* (rejecting until
    ``cooldown_seconds`` after the trip), *half-open* (cooldown elapsed;
    exactly one probe job may run — its success closes the breaker, its
    failure re-opens it).  Failures are *worker-level* faults (process
    death, watchdog kill), not honest UNKNOWN verdicts: a hard program
    is not an outage, a crashing worker is.

    All methods take ``now`` explicitly (monotonic seconds) so the
    state machine is a pure function of its call history.
    """

    def __init__(self, policy: BreakerPolicy | None = None) -> None:
        self.policy = policy or BreakerPolicy()
        self.trips = 0
        self._failures: dict[str, deque[float]] = {}
        self._opened_at: dict[str, float] = {}
        self._probing: set[str] = set()

    def _prune(self, key: str, now: float) -> deque[float]:
        window = self._failures.setdefault(key, deque())
        horizon = now - self.policy.window_seconds
        while window and window[0] < horizon:
            window.popleft()
        return window

    def is_open(self, key: str, now: float) -> bool:
        opened = self._opened_at.get(key)
        if opened is None:
            return False
        if now - opened < self.policy.cooldown_seconds:
            return True
        # cooldown elapsed: half-open — one probe allowed at a time
        return key in self._probing

    def allow(self, key: str, now: float) -> bool:
        """May a job for *key* start right now?  Claims the half-open
        probe slot when the cooldown has elapsed."""
        opened = self._opened_at.get(key)
        if opened is None:
            return True
        if now - opened < self.policy.cooldown_seconds:
            return False
        if key in self._probing:
            return False
        self._probing.add(key)
        return True

    def record_failure(self, key: str, now: float) -> bool:
        """Count a worker-level failure; returns True when this one
        trips the breaker open (including a failed half-open probe)."""
        self._probing.discard(key)
        if key in self._opened_at:
            # failed probe (or failure of a job admitted pre-trip):
            # restart the cooldown
            self._opened_at[key] = now
            return True
        window = self._prune(key, now)
        window.append(now)
        if len(window) >= self.policy.threshold:
            self._opened_at[key] = now
            self.trips += 1
            window.clear()
            return True
        return False

    def record_success(self, key: str) -> None:
        """A completed job for *key*: closes a half-open breaker."""
        self._probing.discard(key)
        self._opened_at.pop(key, None)
        window = self._failures.get(key)
        if window:
            window.clear()

    def open_keys(self, now: float) -> list[str]:
        return sorted(k for k in self._opened_at if self.is_open(k, now))


@dataclass(frozen=True)
class TenantPolicy:
    """Per-tenant scheduling knobs: fair-share weight and budget cap.

    ``weight`` scales the tenant's share of the weighted-fair dequeue
    (2.0 = twice the service rate of a weight-1.0 tenant under
    contention); ``budget`` overrides the admission policy's default
    outstanding-cost capacity when set.
    """

    weight: float = 1.0
    budget: int | None = None


@dataclass
class ServicePolicies:
    """The bundle the server is configured with."""

    admission: AdmissionPolicy = field(default_factory=AdmissionPolicy)
    retry: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(max_attempts=3)
    )
    breaker: BreakerPolicy = field(default_factory=BreakerPolicy)
    tenants: dict[str, TenantPolicy] = field(default_factory=dict)

    def tenant(self, name: str) -> TenantPolicy:
        return self.tenants.get(name, TenantPolicy())

    def budget_for(self, name: str) -> TokenBudget:
        override = self.tenant(name).budget
        capacity = (
            override
            if override is not None
            else self.admission.max_tenant_outstanding
        )
        return TokenBudget(capacity)
