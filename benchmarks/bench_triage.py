"""Portfolio triage guard: plan determinism + verdict bit-identity.

Two contracts, pinned against ``benchmarks/triage_baseline.json``:

* **Plan determinism** — the triage plan (ranked member lists, feature
  scores, ladder budgets) for a fixed program set must match the
  checked-in baseline exactly.  Ranking drift means the feature
  extractor or the weights changed; that must be a reviewed decision,
  not an accident.
* **Verdict bit-identity** — a triaged sequential portfolio must agree
  verdict-for-verdict with the untriaged run, with every member that
  completed under triage bit-identical (rounds, proof size, states) to
  its untriaged twin, and must report ``triage_budget_saved_seconds``
  greater than zero on a budgeted race it wins early.  Wall seconds are
  reported, never asserted.

To regenerate the baseline after an *intentional* ranking change::

    REPRO_REGEN_BASELINE=1 PYTHONPATH=src \
        python -m pytest benchmarks/bench_triage.py -q --benchmark-disable
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro import VerifierConfig
from repro.benchmarks import by_name
from repro.harness import atomic_write_text, emit
from repro.verifier import plan_portfolio, standard_orders, verify_portfolio

BASELINE_PATH = Path(__file__).resolve().parent / "triage_baseline.json"

#: registry programs covering every ranked-first kind: seq pipelines,
#: lockstep protocols, rand-favoured drivers, plus a buggy instance
PLAN_PROGRAMS = (
    "dekker",
    "peterson",
    "bluetooth(2)",
    "token-ring(3)",
    "counter-sum(2)",
    "ticket-lock(2)-bug",
)

#: the differential set stays small: one correct, one buggy program
DIFF_PROGRAMS = ("dekker", "ticket-lock(2)-bug")

PLAN_BUDGET = 8.0
DIFF_BUDGET = 12.0


def _plan_row(name: str) -> dict:
    program = by_name(name).build()
    plan = plan_portfolio(
        program, standard_orders(program), time_budget=PLAN_BUDGET
    )
    return {
        "ranked": plan.order_names(),
        "scores": [round(m.score, 4) for m in plan.ranked],
        "stage_budgets": plan.stage_budgets,
        "family": plan.family,
    }


def _run_plans() -> dict:
    return {name: _plan_row(name) for name in PLAN_PROGRAMS}


def test_triage_plan_matches_baseline(benchmark):
    observed = benchmark.pedantic(_run_plans, rounds=1, iterations=1)
    if os.environ.get("REPRO_REGEN_BASELINE"):
        atomic_write_text(
            BASELINE_PATH, json.dumps(observed, indent=2) + "\n"
        )
    baseline = json.loads(BASELINE_PATH.read_text())
    lines = [f"{'program':20s} ranked members"]
    for name, row in observed.items():
        lines.append(f"{name:20s} {', '.join(row['ranked'])}")
    emit("bench_triage_plan", lines)
    assert observed == baseline, (
        "triage plan drifted from benchmarks/triage_baseline.json "
        "(intentional ranking change? regenerate with "
        "REPRO_REGEN_BASELINE=1)"
    )


def _differential(name: str) -> dict:
    program = by_name(name).build()
    triaged = verify_portfolio(
        program, VerifierConfig(max_rounds=60, time_budget=DIFF_BUDGET)
    )
    flat = verify_portfolio(
        program,
        VerifierConfig(max_rounds=60, time_budget=DIFF_BUDGET, triage=False),
    )
    flat_members = {m.order_name: m for m in flat.members}
    completed = mismatched = 0
    for member in triaged.members:
        if member.failure_reason and "cancelled" in member.failure_reason:
            continue
        completed += 1
        twin = flat_members[member.order_name]
        if (
            member.verdict != twin.verdict
            or member.rounds != twin.rounds
            or member.proof_size != twin.proof_size
            or member.states_explored != twin.states_explored
        ):
            mismatched += 1
    counters = triaged.triage_counters or {}
    return {
        "verdict": triaged.aggregate().verdict.value,
        "flat_verdict": flat.aggregate().verdict.value,
        "completed": completed,
        "mismatched": mismatched,
        "budget_saved": counters.get("budget_saved_seconds", 0.0),
        "emulated_wall": triaged.emulated_wall_seconds,
    }


def test_triage_verdicts_bit_identical(benchmark):
    rows = benchmark.pedantic(
        lambda: {name: _differential(name) for name in DIFF_PROGRAMS},
        rounds=1,
        iterations=1,
    )
    lines = [
        f"{'program':20s} {'verdict':10s} {'members':>7s} {'saved':>8s}"
        f" {'wall':>7s}"
    ]
    for name, row in rows.items():
        lines.append(
            f"{name:20s} {row['verdict']:10s} {row['completed']:>7d}"
            f" {row['budget_saved']:>7.1f}s {row['emulated_wall']:>6.2f}s"
        )
    emit("bench_triage_diff", lines)
    for name, row in rows.items():
        assert row["verdict"] == row["flat_verdict"], (
            f"{name}: triage changed the verdict "
            f"({row['verdict']} vs {row['flat_verdict']})"
        )
        assert row["mismatched"] == 0, (
            f"{name}: {row['mismatched']} completed members drifted from "
            "their untriaged twins"
        )
        assert row["completed"] >= 1
        assert row["budget_saved"] > 0.0, (
            f"{name}: a budgeted triaged race that ends early must bank "
            "budget from its cancelled losers"
        )
