"""Corruption and crash tolerance of the proof store.

The failure model: any damage to the store directory — truncated
segments, flipped bits, version-skewed or garbage manifests, writers
killed mid-flush — degrades to a cold start with a logged warning.
The store may serve fewer hits; it must never crash the verifier or
serve a wrong verdict.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.store import (
    FORMAT_VERSION,
    KIND_SAT,
    ProofStore,
    reset_store_registry,
)
from repro.store.store import MANIFEST_NAME, _frame


@pytest.fixture(autouse=True)
def _fresh_registry():
    reset_store_registry()
    yield
    reset_store_registry()


def _seed_store(path, n=4):
    store = ProofStore(path)
    for i in range(n):
        store.put(KIND_SAT, bytes([i]) * 16, True)
    store.flush()
    return sorted(
        p for p in Path(path).iterdir() if p.name.startswith("segment-")
    )


def test_truncated_segment_tail_dropped(tmp_path, caplog):
    (segment,) = _seed_store(tmp_path / "s")
    text = segment.read_text()
    segment.write_text(text + "deadbeef:{\"k\": \"sat\", \"key\": \"ff")
    with caplog.at_level("WARNING", logger="repro.store"):
        store = ProofStore(tmp_path / "s")
    assert not store.disabled
    assert len(store) == 4  # intact prefix fully served
    assert store.load_warnings == 1
    assert any("corrupt record" in r.message for r in caplog.records)


def test_flipped_byte_fails_crc(tmp_path, caplog):
    (segment,) = _seed_store(tmp_path / "s")
    lines = segment.read_text().splitlines(keepends=True)
    lines[1] = lines[1].replace("true", "false", 1)  # bit-flip a verdict
    segment.write_text("".join(lines))
    with caplog.at_level("WARNING", logger="repro.store"):
        store = ProofStore(tmp_path / "s")
    assert not store.disabled
    assert len(store) == 3  # the damaged record is gone, not wrong
    assert store.get(KIND_SAT, bytes([1]) * 16) is None
    assert store.load_warnings == 1


def test_garbage_segment_content(tmp_path, caplog):
    (segment,) = _seed_store(tmp_path / "s")
    segment.write_bytes(b"\x00\xff" * 512 + b"\n")
    with caplog.at_level("WARNING", logger="repro.store"):
        store = ProofStore(tmp_path / "s")
    assert not store.disabled
    assert len(store) == 0
    assert store.load_warnings == 1


def test_valid_crc_invalid_json_dropped(tmp_path):
    path = tmp_path / "s"
    _seed_store(path, n=1)
    (path / "segment-zz.log").write_text(_frame("{not json"))
    store = ProofStore(path)
    assert len(store) == 1
    assert store.load_warnings == 1


def test_valid_crc_unknown_kind_dropped(tmp_path):
    path = tmp_path / "s"
    _seed_store(path, n=1)
    payload = json.dumps({"k": "future-kind", "key": "00ff", "v": 1})
    (path / "segment-zz.log").write_text(_frame(payload))
    store = ProofStore(path)
    assert len(store) == 1  # forward-incompatible record skipped
    assert store.load_warnings == 1


def test_manifest_version_skew_disables(tmp_path, caplog):
    path = tmp_path / "s"
    _seed_store(path)
    (path / MANIFEST_NAME).write_text(
        json.dumps({"format": FORMAT_VERSION + 1})
    )
    with caplog.at_level("WARNING", logger="repro.store"):
        store = ProofStore(path)
    assert store.disabled
    assert any("format version" in r.message for r in caplog.records)
    # disabled: no hits, no writes, no flush — foreign data untouched
    assert store.get(KIND_SAT, bytes([0]) * 16) is None
    store.put(KIND_SAT, b"\x10" * 16, True)
    assert store.flush() == 0


def test_garbage_manifest_disables(tmp_path, caplog):
    path = tmp_path / "s"
    _seed_store(path)
    (path / MANIFEST_NAME).write_text("{]" * 10)
    with caplog.at_level("WARNING", logger="repro.store"):
        store = ProofStore(path)
    assert store.disabled
    assert any("manifest" in r.message for r in caplog.records)


def test_stale_tmp_files_ignored(tmp_path):
    path = tmp_path / "s"
    _seed_store(path)
    # a writer died between staging and os.replace: its tmp is invisible
    (path / ".segment-99999999-000000.log.tmp.1234").write_text("partial")
    store = ProofStore(path)
    assert not store.disabled
    assert len(store) == 4
    assert store.load_warnings == 0


def test_sigkill_mid_flush_leaves_valid_store(tmp_path):
    # a writer process killed while flushing thousands of records must
    # leave either nothing or fully valid segments (atomic publish)
    path = tmp_path / "s"
    script = (
        "import os, sys\n"
        "from repro.store import ProofStore, KIND_SAT\n"
        f"store = ProofStore({str(path)!r})\n"
        "i = 0\n"
        "while True:\n"
        "    store.put(KIND_SAT, i.to_bytes(16, 'big'), True)\n"
        "    i += 1\n"
        "    if i % 100 == 0:\n"
        "        store.flush()\n"
        "        print('flushed', flush=True)\n"
    )
    import repro

    env = dict(os.environ)
    src = str(Path(repro.__file__).resolve().parents[1])
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-c", script],
        stdout=subprocess.PIPE, text=True, env=env,
    )
    proc.stdout.readline()  # at least one flush happened
    proc.kill()
    proc.wait()
    store = ProofStore(path)
    assert not store.disabled
    # every surviving record is a fully framed write
    assert len(store) >= 100
    assert len(store) % 100 == 0 or store.load_warnings == 0
    for i in range(100):
        assert store.get(KIND_SAT, i.to_bytes(16, "big")) is True


def test_verifier_survives_corrupt_store(tmp_path, caplog):
    # end to end: a trashed store directory never changes the verdict
    from repro.benchmarks import all_benchmarks
    from repro.core import ConditionalCommutativity
    from repro.core.preference import ThreadUniformOrder
    from repro.logic import Solver
    from repro.verifier import VerifierConfig, verify

    path = tmp_path / "s"
    path.mkdir()
    (path / MANIFEST_NAME).write_text("not a manifest at all")
    (path / "segment-corrupt.log").write_bytes(os.urandom(256))
    bench = next(b for b in all_benchmarks() if "mutex" in b.name)
    config = VerifierConfig(store_path=str(path), time_budget=30)
    with caplog.at_level("WARNING", logger="repro.store"):
        solver = Solver()
        result = verify(
            bench.build(), ThreadUniformOrder(),
            ConditionalCommutativity(solver), config=config, solver=solver,
        )
    assert result.verdict.value == "correct"
    assert result.query_stats.store_hits == 0  # ran fully cold
    assert caplog.records  # and said so


def test_flush_failure_keeps_records_pending(tmp_path, caplog, monkeypatch):
    store = ProofStore(tmp_path / "s")
    store.put(KIND_SAT, b"\x11" * 16, True)

    def boom(path, text):
        raise OSError(28, "No space left on device")

    monkeypatch.setattr("repro.store.store._atomic_write", boom)
    with caplog.at_level("WARNING", logger="repro.store"):
        assert store.flush() == 0
    assert any("flush failed" in r.message for r in caplog.records)
    monkeypatch.undo()
    assert store.flush() == 1  # records survived for the next attempt
    assert ProofStore(tmp_path / "s").get(KIND_SAT, b"\x11" * 16) is True
