"""Preference order unit tests (construction, contexts, edge cases)."""

import pytest

from repro.core import (
    LockstepOrder,
    PositionalOrder,
    RandomOrder,
    ThreadUniformOrder,
    prefers,
)
from repro.lang import assign
from repro.logic import intc

A = assign(0, "x", intc(1))
B = assign(1, "y", intc(1))
C = assign(2, "z", intc(1))


class TestThreadUniform:
    def test_default_priority_is_thread_index(self):
        order = ThreadUniformOrder()
        ctx = order.initial_context()
        assert order.key(ctx, A) < order.key(ctx, B) < order.key(ctx, C)

    def test_custom_priority(self):
        order = ThreadUniformOrder(priority=[2, 1, 0])
        ctx = order.initial_context()
        assert order.key(ctx, C) < order.key(ctx, B) < order.key(ctx, A)

    def test_context_is_constant(self):
        order = ThreadUniformOrder()
        ctx = order.initial_context()
        assert order.advance(ctx, A) == ctx

    def test_keys_are_strict(self):
        order = ThreadUniformOrder()
        a2 = assign(0, "w", intc(0))
        ctx = order.initial_context()
        assert order.key(ctx, A) != order.key(ctx, a2)  # uid tiebreak


class TestLockstep:
    def test_initial_prefers_thread_zero(self):
        order = LockstepOrder(3)
        ctx = order.initial_context()
        assert order.key(ctx, A) < order.key(ctx, B) < order.key(ctx, C)

    def test_rotation_after_move(self):
        order = LockstepOrder(3)
        ctx = order.advance(order.initial_context(), A)
        # after thread 0 moves, thread 1 is most preferred, 0 least
        assert order.key(ctx, B) < order.key(ctx, C) < order.key(ctx, A)

    def test_wraparound(self):
        order = LockstepOrder(3)
        ctx = order.advance(order.initial_context(), C)
        assert order.key(ctx, A) < order.key(ctx, B) < order.key(ctx, C)

    def test_rejects_zero_threads(self):
        with pytest.raises(ValueError):
            LockstepOrder(0)


class TestRandom:
    def test_unknown_letter_sorts_last(self):
        order = RandomOrder([A, B], seed=0)
        ctx = order.initial_context()
        assert order.key(ctx, C) > order.key(ctx, A)
        assert order.key(ctx, C) > order.key(ctx, B)

    def test_name_contains_seed(self):
        assert RandomOrder([A], seed=42).name == "rand(42)"


class TestPositional:
    def test_custom_positional_order(self):
        # alternate preference between thread 0 and thread 1 by parity
        order = PositionalOrder(
            initial=0,
            advance=lambda ctx, letter: 1 - ctx,
            key=lambda ctx, letter: (
                (letter.thread + ctx) % 2,
                letter.uid,
            ),
            name="parity",
        )
        ctx = order.initial_context()
        assert order.key(ctx, A) < order.key(ctx, B)
        ctx = order.advance(ctx, A)
        assert order.key(ctx, B) < order.key(ctx, A)

    def test_prefers_uses_contexts(self):
        order = LockstepOrder(2)
        # under lockstep, A B is preferred to A A' (after A, thread 1 first)
        a2 = assign(0, "w", intc(0))
        assert prefers(order, (A, B), (A, a2))
        assert not prefers(order, (A, a2), (A, B))

    def test_prefers_equal_words(self):
        order = ThreadUniformOrder()
        assert prefers(order, (A, B), (A, B))
