"""The fast layer pipeline: compiled ⋖-sorted edge tables + mask memos.

The pure stack answers an expansion with a memoized tuple of
``(letter, successor, sort key, next context)`` objects and re-derives
the sleep rule's candidate set ``{b | b ∈ S or b <_q a}`` by comparing
sort keys per sibling.  Here both are compiled once per ``(q, ctx)``:

* ``edges`` — ``(a_id, bit, q2_id, ctx2_id, lower_mask)`` in ⋖ order,
  where ``lower_mask`` is the bitmask of the strictly-⋖-smaller sibling
  letters (a prefix OR, since the edges are sorted and keys are strict);
* ``enabled_mask`` — the OR of all edge letters, so the sleep rule's
  candidate set becomes ``(S | lower_mask) & enabled_mask``: two mask
  ops instead of a key comparison per sibling;
* the membrane (persistent-set) letter filter, memoized per
  ``(q, ctx)`` as a mask — the provider's own ``(state, context)`` memo
  already guarantees one conflict-graph run per pair, this avoids even
  the frozenset round trip on re-visits.

Commutativity masks are *not* here: they depend on the proof assertion
φ, so they live with the proof-check glue (:mod:`repro.fastpath.check`)
next to the subsumption cache they decode into.
"""

from __future__ import annotations

from typing import Callable

from ..core.preference import Context
from ..lang.program import ProductState
from ..lang.statements import Statement
from .encoder import ProgramEncoder

#: the membrane hook, same shape the pure layers use
LetterFilter = Callable[[ProductState, Context], frozenset[Statement]]


class EdgeTable:
    """The compiled outgoing edges of one ``(q, ctx)`` pair."""

    __slots__ = ("edges", "enabled_mask")

    def __init__(
        self,
        edges: tuple[tuple[int, int, int, int, int], ...],
        enabled_mask: int,
    ) -> None:
        self.edges = edges
        self.enabled_mask = enabled_mask


class FastPipeline:
    """Edge tables and membrane masks over a :class:`ProgramEncoder`."""

    def __init__(
        self,
        encoder: ProgramEncoder,
        membrane: LetterFilter | None = None,
    ) -> None:
        self.enc = encoder
        self.membrane = membrane
        self._tables: dict[tuple[int, int], EdgeTable] = {}
        self._membrane_masks: dict[tuple[int, int], int] = {}
        #: compiled-edge-table memo counters (``fastpath_edge_*``)
        self.edge_hits = 0
        self.edge_misses = 0

    def edge_table(self, q_id: int, ctx_id: int) -> EdgeTable:
        """The ⋖-sorted compiled edges of ``(q, ctx)``, memoized.

        Sorting uses the encoder's precomputed per-context rank array;
        keys include the letter uid, so they are strict and the sorted
        order matches the pure context layer's exactly.
        """
        memo_key = (q_id, ctx_id)
        table = self._tables.get(memo_key)
        if table is not None:
            self.edge_hits += 1
            return table
        self.edge_misses += 1
        enc = self.enc
        keys = enc.key_table(ctx_id)
        letter_id = enc.letter_id
        raw = sorted(
            (
                (keys[letter_id[a]], letter_id[a], q2)
                for a, q2 in enc.program.successors(enc.q_of(q_id))
            ),
            key=lambda e: e[0],
        )
        edges = []
        enabled = 0
        lower = 0  # prefix OR: bits of the strictly-⋖-smaller siblings
        for _key, a_id, q2 in raw:
            bit = 1 << a_id
            edges.append(
                (a_id, bit, enc.q_id(q2), enc.advance_id(ctx_id, a_id), lower)
            )
            lower |= bit
            enabled |= bit
        table = EdgeTable(tuple(edges), enabled)
        self._tables[memo_key] = table
        return table

    def membrane_mask(self, q_id: int, ctx_id: int) -> int:
        """The persistent-set letter filter of ``(q, ctx)`` as a mask."""
        memo_key = (q_id, ctx_id)
        mask = self._membrane_masks.get(memo_key)
        if mask is None:
            enc = self.enc
            mask = enc.mask_of(
                self.membrane(enc.q_of(q_id), enc.ctx_of(ctx_id))
            )
            self._membrane_masks[memo_key] = mask
        return mask
