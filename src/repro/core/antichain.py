"""Antichain frontier compaction for monotone set-keyed caches (§7.2).

Several cross-round caches record verdicts keyed by a predicate set and
answer queries by subsumption: the useless-state cache and the positive
commutativity entries fire when a *recorded ⊆ query* set exists, the
negative commutativity entries when a *recorded ⊇ query* set exists.
After the proof vocabulary grows, each bucket is compacted to its
frontier — the ⊆-minimal (resp. ⊇-maximal) antichain — because a
dominated entry answers no query its dominator does not.

Sorting by cardinality first makes the scan one-directional: a set can
only be dominated by one that sorts before it, so one pass with
subset checks against the *kept* prefix replaces the quadratic
all-pairs scans these call sites used to duplicate.
"""

from __future__ import annotations

from typing import Iterable, TypeVar

S = TypeVar("S", bound=frozenset)


def minimal_antichain(sets: Iterable[S]) -> list[S]:
    """The ⊆-minimal elements, deduplicated, smallest-first.

    Every dropped set has a kept subset, so for subsumption caches that
    fire on ``recorded <= query`` no answer changes.
    """
    kept: list[S] = []
    for s in sorted(sets, key=len):
        if not any(r <= s for r in kept):
            kept.append(s)
    return kept


def maximal_antichain(sets: Iterable[S]) -> list[S]:
    """The ⊇-maximal elements, deduplicated, largest-first.

    The dual frontier, for caches that fire on ``recorded >= query``.
    """
    kept: list[S] = []
    for s in sorted(sets, key=len, reverse=True):
        if not any(r >= s for r in kept):
            kept.append(s)
    return kept
