"""Portfolio verification over preference orders (§8).

The paper's GemCutter data points aggregate, per benchmark, the best of
five preference orders — ``seq``, ``lockstep``, and three seeded random
orders — with the portfolio terminating as soon as any order's analysis
terminates.  Running the members sequentially, we emulate the parallel
portfolio's wall-clock time as the *minimum* member time (each member
would have run concurrently); per-member results are kept for the
order-comparison experiments (Figure 8, Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..core.commutativity import CommutativityRelation, ConditionalCommutativity
from ..core.preference import (
    LockstepOrder,
    PreferenceOrder,
    RandomOrder,
    ThreadUniformOrder,
)
from ..lang.program import ConcurrentProgram
from ..logic import Solver
from .refinement import VerifierConfig, verify
from .stats import Verdict, VerificationResult

DEFAULT_RANDOM_SEEDS = (1, 2, 3)


def standard_orders(
    program: ConcurrentProgram,
    seeds: Sequence[int] = DEFAULT_RANDOM_SEEDS,
) -> list[PreferenceOrder]:
    """The five orders evaluated in the paper (§8)."""
    orders: list[PreferenceOrder] = [
        ThreadUniformOrder(),
        LockstepOrder(len(program.threads)),
    ]
    alphabet = program.alphabet()
    orders.extend(RandomOrder(alphabet, seed) for seed in seeds)
    return orders


@dataclass
class PortfolioResult:
    """The aggregated result plus every member's individual result."""

    program_name: str
    members: list[VerificationResult] = field(default_factory=list)

    @property
    def solved(self) -> bool:
        return any(m.verdict.solved for m in self.members)

    @property
    def winner(self) -> VerificationResult | None:
        """The fastest solving member (the portfolio's effective run)."""
        solving = [m for m in self.members if m.verdict.solved]
        if not solving:
            return None
        return min(solving, key=lambda m: m.time_seconds)

    @property
    def verdict(self) -> Verdict:
        best = self.winner
        return best.verdict if best is not None else Verdict.UNKNOWN

    def aggregate(self) -> VerificationResult:
        """A single result reflecting parallel portfolio execution."""
        best = self.winner
        if best is None:
            worst = max(
                self.members, key=lambda m: m.time_seconds, default=None
            )
            out = VerificationResult(
                program_name=self.program_name,
                verdict=Verdict.UNKNOWN,
                order_name="portfolio",
            )
            if worst is not None:
                out.time_seconds = worst.time_seconds
            return out
        out = VerificationResult(
            program_name=self.program_name,
            verdict=best.verdict,
            rounds=best.rounds,
            proof_size=best.proof_size,
            num_predicates=best.num_predicates,
            states_explored=best.states_explored,
            time_seconds=best.time_seconds,
            peak_memory_bytes=best.peak_memory_bytes,
            counterexample=best.counterexample,
            query_stats=best.query_stats,
            order_name=f"portfolio[{best.order_name}]",
            mode=best.mode,
        )
        return out


def verify_portfolio(
    program: ConcurrentProgram,
    config: VerifierConfig | None = None,
    *,
    seeds: Sequence[int] = DEFAULT_RANDOM_SEEDS,
    commutativity_factory: Callable[[Solver], CommutativityRelation] | None = None,
) -> PortfolioResult:
    """Run the standard five-order portfolio on *program*."""
    result = PortfolioResult(program_name=program.name)
    for order in standard_orders(program, seeds):
        solver = Solver()
        commutativity = (
            commutativity_factory(solver)
            if commutativity_factory is not None
            else ConditionalCommutativity(solver)
        )
        member = verify(
            program, order, commutativity, config=config, solver=solver
        )
        result.members.append(member)
    return result
