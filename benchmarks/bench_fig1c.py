"""Figure 1(c): proof size over the number of threads (bluetooth).

The paper plots proof sizes for bluetooth instances (2–10 threads) under
the sequential-composition order (red circles), lockstep (blue +), and
three random preference orders (×): different reductions admit wildly
different proof sizes.  We regenerate the same series at laptop scale
(2–4 threads by default, 2–6 with REPRO_FULL=1).
"""

from repro import VerifierConfig, verify
from repro.benchmarks import bluetooth
from repro.core import LockstepOrder, RandomOrder, ThreadUniformOrder
from repro.core.commutativity import ConditionalCommutativity
from repro.harness import emit, emit_json, full_scale, round_budget, time_budget
from repro.logic import Solver

ORDERS = ("seq", "lockstep", "rand(1)", "rand(2)", "rand(3)")


def _order(name, program):
    if name == "seq":
        return ThreadUniformOrder()
    if name == "lockstep":
        return LockstepOrder(len(program.threads))
    return RandomOrder(program.alphabet(), int(name[5:-1]))


def _run_figure():
    sizes = range(2, 7 if full_scale() else 5)
    rows = []
    for n in sizes:
        row = {"threads": n}
        for name in ORDERS:
            program = bluetooth(n)
            solver = Solver()
            result = verify(
                program,
                _order(name, program),
                ConditionalCommutativity(solver),
                config=VerifierConfig(
                    max_rounds=round_budget(),
                    time_budget=time_budget(),
                ),
                solver=solver,
            )
            row[name] = result.proof_size if result.verdict.solved else None
        rows.append(row)
    return rows


def test_fig1c_proof_size_over_threads(benchmark):
    rows = benchmark.pedantic(_run_figure, rounds=1, iterations=1)
    lines = ["threads  " + "  ".join(f"{o:>9s}" for o in ORDERS)]
    for row in rows:
        cells = "  ".join(
            f"{row[o]:>9}" if row[o] is not None else f"{'--':>9}"
            for o in ORDERS
        )
        lines.append(f"{row['threads']:>7d}  {cells}")
    lines.append("")
    lines.append("Paper shape: proof size varies strongly with the order;")
    lines.append("no single order dominates across instances.")
    emit("fig1c", lines)
    emit_json("fig1c", rows)
    solved = [row[o] for row in rows for o in ORDERS if row[o] is not None]
    assert solved, "no bluetooth instance solved"
    # the qualitative claim: different orders give different proof sizes
    spread = {row["threads"]: {row[o] for o in ORDERS if row[o]} for row in rows}
    assert any(len(v) > 1 for v in spread.values())
