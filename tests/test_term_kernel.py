"""Term-kernel tests: interning identity, differential semantics against
a structural reference, kernel counters, pickle re-interning (in-process
and across a real portfolio worker), and the interner-leak guard.

The kernel invariant under test: for live nodes, structural equality is
object identity, and every precomputed per-node attribute (``free_vars``,
``size``, ``has_arrays``) agrees with a from-scratch recursive walk.
"""

from __future__ import annotations

import gc
import pickle
from copy import deepcopy

from hypothesis import given, settings, strategies as st

from repro import VerifierConfig, parse, verify
from repro.logic import (
    TRUE,
    add,
    and_,
    avar,
    boolc,
    compact_kernel,
    eq,
    evaluate,
    intc,
    intern_table_size,
    ite,
    kernel_counters,
    le,
    mul,
    not_,
    or_,
    rename,
    select,
    store,
    sub,
    substitute,
    var,
)
from repro.logic import terms as tk
from repro.verifier import Verdict, run_parallel_portfolio

SIMPLE = (
    "var x: int = 0; thread A { x := x + 1; } thread B { x := x + 1; } "
    "post: x == 2;"
)


# ---------------------------------------------------------------------------
# Interning identity
# ---------------------------------------------------------------------------


class TestInterningIdentity:
    def test_every_node_type_interns(self):
        # direct class construction must intern too (the contract for
        # new node types; see docs/solver.md) — __new__ is the interner
        x, y = var("ii_x"), var("ii_y")
        a = avar("ii_arr")
        pairs = [
            (tk.IntConst(12345), tk.IntConst(12345)),
            (tk.BoolConst(True), TRUE),
            (tk.Var("ii_x"), x),
            (tk.Add((x, tk.IntConst(999))), tk.Add((x, tk.IntConst(999)))),
            (tk.Mul(3, x), tk.Mul(3, x)),
            (tk.Ite(tk.Le(x, y), x, y), tk.Ite(tk.Le(x, y), x, y)),
            (tk.AVar("ii_arr"), a),
            (tk.Select(a, x), tk.Select(a, x)),
            (tk.Store(a, x, y), tk.Store(a, x, y)),
            (tk.Le(x, y), tk.Le(x, y)),
            (tk.Eq(x, y), tk.Eq(x, y)),
            (tk.Not(tk.Le(x, y)), tk.Not(tk.Le(x, y))),
            (tk.And((tk.Le(x, y), tk.Eq(x, y))), tk.And((tk.Le(x, y), tk.Eq(x, y)))),
            (tk.Or((tk.Le(x, y), tk.Eq(x, y))), tk.Or((tk.Le(x, y), tk.Eq(x, y)))),
        ]
        for first, second in pairs:
            assert first is second
            assert hash(first) == hash(second)

    def test_intern_counters_move(self):
        before = kernel_counters()
        t = add(var("kc_x"), intc(987_123))
        after = kernel_counters()
        assert after["intern_misses"] > before["intern_misses"]
        before = kernel_counters()
        again = add(var("kc_x"), intc(987_123))
        after = kernel_counters()
        assert again is t
        assert after["intern_hits"] >= before["intern_hits"] + 3
        assert after["intern_misses"] == before["intern_misses"]

    def test_distinct_structures_distinct_nodes(self):
        assert le(var("kd_x"), intc(1)) is not le(var("kd_x"), intc(2))
        assert intc(7) is not intc(8)
        # a BoolConst(True) key must never collide with IntConst(1)
        assert tk.BoolConst(True) is not tk.IntConst(1)


# ---------------------------------------------------------------------------
# Differential semantics: interned smart constructors vs a structural spec
# ---------------------------------------------------------------------------

_NAMES = ("dx", "dy", "dz")

_int_spec = st.deferred(
    lambda: st.one_of(
        st.integers(-3, 3).map(lambda v: ("int", v)),
        st.sampled_from(_NAMES).map(lambda n: ("var", n)),
        st.tuples(st.just("add"), _int_spec, _int_spec),
        st.tuples(st.just("mul"), st.integers(-2, 2), _int_spec),
        st.tuples(st.just("sub"), _int_spec, _int_spec),
        st.tuples(st.just("ite"), _bool_spec, _int_spec, _int_spec),
    )
)
_bool_spec = st.deferred(
    lambda: st.one_of(
        st.booleans().map(lambda v: ("bool", v)),
        st.tuples(st.just("le"), _int_spec, _int_spec),
        st.tuples(st.just("eq"), _int_spec, _int_spec),
        st.tuples(st.just("not"), _bool_spec),
        st.tuples(st.just("and"), _bool_spec, _bool_spec),
        st.tuples(st.just("or"), _bool_spec, _bool_spec),
    )
)
_envs = st.fixed_dictionaries({n: st.integers(-3, 3) for n in _NAMES})


def _build(spec) -> tk.Term:
    """Spec -> term through the (normalizing, interning) smart constructors."""
    tag = spec[0]
    if tag == "int":
        return intc(spec[1])
    if tag == "var":
        return var(spec[1])
    if tag == "add":
        return add(_build(spec[1]), _build(spec[2]))
    if tag == "mul":
        return mul(spec[1], _build(spec[2]))
    if tag == "sub":
        return sub(_build(spec[1]), _build(spec[2]))
    if tag == "ite":
        return ite(_build(spec[1]), _build(spec[2]), _build(spec[3]))
    if tag == "bool":
        return boolc(spec[1])
    if tag == "le":
        return le(_build(spec[1]), _build(spec[2]))
    if tag == "eq":
        return eq(_build(spec[1]), _build(spec[2]))
    if tag == "not":
        return not_(_build(spec[1]))
    if tag == "and":
        return and_(_build(spec[1]), _build(spec[2]))
    if tag == "or":
        return or_(_build(spec[1]), _build(spec[2]))
    raise AssertionError(spec)


def _ref_eval(spec, env):
    """Evaluate the spec directly: pre-interning structural semantics."""
    tag = spec[0]
    if tag == "int":
        return spec[1]
    if tag == "var":
        return env[spec[1]]
    if tag == "add":
        return _ref_eval(spec[1], env) + _ref_eval(spec[2], env)
    if tag == "mul":
        return spec[1] * _ref_eval(spec[2], env)
    if tag == "sub":
        return _ref_eval(spec[1], env) - _ref_eval(spec[2], env)
    if tag == "ite":
        branch = spec[2] if _ref_eval(spec[1], env) else spec[3]
        return _ref_eval(branch, env)
    if tag == "bool":
        return spec[1]
    if tag == "le":
        return _ref_eval(spec[1], env) <= _ref_eval(spec[2], env)
    if tag == "eq":
        return _ref_eval(spec[1], env) == _ref_eval(spec[2], env)
    if tag == "not":
        return not _ref_eval(spec[1], env)
    if tag == "and":
        return _ref_eval(spec[1], env) and _ref_eval(spec[2], env)
    if tag == "or":
        return _ref_eval(spec[1], env) or _ref_eval(spec[2], env)
    raise AssertionError(spec)


def _structural_free_vars(term: tk.Term) -> frozenset[str]:
    """Reference recomputation of free_vars by recursive walk."""
    if isinstance(term, (tk.Var, tk.AVar)):
        return frozenset((term.name,))
    if isinstance(term, (tk.IntConst, tk.BoolConst)):
        return frozenset()
    if isinstance(term, (tk.Add, tk.And, tk.Or)):
        out: frozenset[str] = frozenset()
        for a in term.args:
            out |= _structural_free_vars(a)
        return out
    if isinstance(term, (tk.Mul, tk.Not)):
        return _structural_free_vars(term.arg)
    if isinstance(term, (tk.Le, tk.Eq)):
        return _structural_free_vars(term.lhs) | _structural_free_vars(term.rhs)
    if isinstance(term, tk.Ite):
        return (
            _structural_free_vars(term.cond)
            | _structural_free_vars(term.then)
            | _structural_free_vars(term.else_)
        )
    if isinstance(term, tk.Select):
        return _structural_free_vars(term.array) | _structural_free_vars(term.index)
    if isinstance(term, tk.Store):
        return (
            _structural_free_vars(term.array)
            | _structural_free_vars(term.index)
            | _structural_free_vars(term.value)
        )
    raise TypeError(repr(term))


def _structural_size(term: tk.Term) -> int:
    if isinstance(term, (tk.Var, tk.AVar, tk.IntConst, tk.BoolConst)):
        return 1
    if isinstance(term, (tk.Add, tk.And, tk.Or)):
        return 1 + sum(_structural_size(a) for a in term.args)
    if isinstance(term, (tk.Mul, tk.Not)):
        return 1 + _structural_size(term.arg)
    if isinstance(term, (tk.Le, tk.Eq)):
        return 1 + _structural_size(term.lhs) + _structural_size(term.rhs)
    if isinstance(term, tk.Ite):
        return (
            1
            + _structural_size(term.cond)
            + _structural_size(term.then)
            + _structural_size(term.else_)
        )
    if isinstance(term, tk.Select):
        return 1 + _structural_size(term.array) + _structural_size(term.index)
    if isinstance(term, tk.Store):
        return (
            1
            + _structural_size(term.array)
            + _structural_size(term.index)
            + _structural_size(term.value)
        )
    raise TypeError(repr(term))


class TestDifferentialSemantics:
    @settings(max_examples=150, deadline=None)
    @given(spec=_bool_spec, env=_envs)
    def test_interned_terms_keep_structural_semantics(self, spec, env):
        term = _build(spec)
        assert bool(evaluate(term, env)) == bool(_ref_eval(spec, env))
        # rebuilding the same spec lands on the same canonical node
        assert _build(spec) is term

    @settings(max_examples=150, deadline=None)
    @given(spec=_bool_spec)
    def test_precomputed_attributes_match_reference_walk(self, spec):
        term = _build(spec)
        assert term.free_vars == _structural_free_vars(term)
        assert term.size == _structural_size(term)
        assert not term.has_arrays

    @settings(max_examples=100, deadline=None)
    @given(spec=_bool_spec, env=_envs, value=st.integers(-3, 3))
    def test_substitute_agrees_with_evaluation(self, spec, env, value):
        term = _build(spec)
        substituted = substitute(term, {"dx": intc(value)})
        env_after = dict(env)
        env_after["dx"] = value
        assert bool(evaluate(substituted, env_after)) == bool(
            evaluate(term, env_after)
        )

    @settings(max_examples=100, deadline=None)
    @given(spec=_bool_spec)
    def test_pickle_roundtrip_is_identity(self, spec):
        term = _build(spec)
        assert pickle.loads(pickle.dumps(term)) is term


# ---------------------------------------------------------------------------
# Memoized traversals and counters
# ---------------------------------------------------------------------------


class TestMemoizedTraversals:
    def test_substitute_prunes_disjoint_mappings(self):
        term = le(add(var("sm_a"), var("sm_b")), intc(7))
        before = kernel_counters()["substitute_hits"]
        assert substitute(term, {"sm_zq": intc(1)}) is term
        assert kernel_counters()["substitute_hits"] == before + 1

    def test_substitute_memoizes_by_node_and_mapping(self):
        term = le(add(var("sm_c"), var("sm_d")), intc(7))
        mapping = {"sm_c": intc(3)}
        first = substitute(term, mapping)
        hits_before = kernel_counters()["substitute_hits"]
        second = substitute(term, mapping)
        assert second is first
        assert kernel_counters()["substitute_hits"] > hits_before
        assert evaluate(first, {"sm_d": 4})  # 3 + 4 <= 7

    def test_free_vars_is_precomputed(self):
        term = and_(le(var("fv_x"), intc(0)), eq(var("fv_y"), var("fv_x")))
        before = kernel_counters()["free_vars_calls"]
        assert tk.free_vars(term) == frozenset({"fv_x", "fv_y"})
        assert kernel_counters()["free_vars_calls"] == before + 1
        assert term.free_vars is tk.free_vars(term)  # same frozenset object

    def test_rename_reuses_interned_vars(self):
        term = eq(var("rn_a"), var("rn_b"))
        renamed = rename(term, {"rn_a": "rn_c"})
        assert renamed is eq(var("rn_c"), var("rn_b"))
        assert rename(term, {"rn_a": "rn_c"}) is renamed

    def test_array_nodes_pickle_and_flag(self):
        chain = store(avar("pa_m"), var("pa_i"), intc(4))
        read = select(chain, var("pa_j"))
        assert chain.has_arrays and read.has_arrays
        assert not le(var("pa_i"), intc(0)).has_arrays
        assert pickle.loads(pickle.dumps(read)) is read
        assert deepcopy(read) is read


# ---------------------------------------------------------------------------
# Compaction and the registered-memo registry
# ---------------------------------------------------------------------------


class TestCompaction:
    def test_compact_kernel_clears_registered_memos(self):
        cache = tk.register_kernel_cache({})
        try:
            cache[("sentinel",)] = TRUE
            before = kernel_counters()["kernel_compactions"]
            dropped = compact_kernel(0)
            assert dropped >= 1
            assert not cache
            assert kernel_counters()["kernel_compactions"] == before + 1
        finally:
            tk._kernel_caches.remove(cache)

    def test_compact_kernel_respects_threshold(self):
        compact_kernel(0)  # start empty
        assert compact_kernel(10**12) == 0  # under budget: no-op

    def test_canonicity_survives_compaction(self):
        term = le(add(var("cc_x"), intc(1)), var("cc_y"))
        compact_kernel(0)
        assert le(add(var("cc_x"), intc(1)), var("cc_y")) is term


# ---------------------------------------------------------------------------
# Cross-process re-interning and the leak guard
# ---------------------------------------------------------------------------


class TestProcessBoundaries:
    def test_reintern_across_real_portfolio_worker(self):
        program = parse(SIMPLE, name="incr2")
        before = kernel_counters()["reintern_count"]
        outcome = run_parallel_portfolio(
            program, VerifierConfig(max_rounds=20), seeds=(1,)
        )
        assert outcome.verdict == Verdict.CORRECT
        winner = outcome.winner
        assert winner is not None and winner.predicates
        # deserializing the workers' results re-interned their terms here
        assert kernel_counters()["reintern_count"] > before
        # ... and the parent-side share is attributed to the winner
        assert winner.query_stats is not None
        assert winner.query_stats.reintern_count > 0
        # the deserialized predicates are canonical in this process
        for predicate in winner.predicates:
            assert pickle.loads(pickle.dumps(predicate)) is predicate

    def test_intern_table_returns_to_baseline_after_verify(self):
        program = parse(SIMPLE, name="incr2")
        compact_kernel(0)
        gc.collect()
        baseline = intern_table_size()
        result = verify(program, config=VerifierConfig(max_rounds=20))
        assert result.verdict == Verdict.CORRECT
        assert intern_table_size() > baseline  # the run built terms
        del result
        compact_kernel(0)
        gc.collect()
        # nothing outside the (cleared) memos pins the run's terms
        assert intern_table_size() <= baseline + 16
