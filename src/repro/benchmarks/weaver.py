"""Weaver-style benchmark families.

The Weaver suite [15] consists (almost) entirely of *correct* concurrent
programs whose proofs need non-trivial relational invariants — good
stress tests for proof *finding*.  These generators follow that spirit:
token passing, lockstep-friendly counter relations, bounded phase
protocols.  Like the original suite (182 correct / 1 incorrect), all
families here are correct except one seeded bug.
"""

from __future__ import annotations

from ..lang import ConcurrentProgram, parse


def token_ring(num_threads: int, *, correct: bool = True) -> ConcurrentProgram:
    """A token travels around a ring; every holder increments a counter.

    Post: the counter equals the ring size.  The proof must track the
    token position against the partial count.  Buggy variant: one stage
    forgets to increment.
    """
    threads = []
    for i in range(num_threads):
        nxt = (i + 1) % num_threads
        bump = "count := count + 1; " if (correct or i != 1) else ""
        threads.append(
            f"thread Ring{i} {{ assume token == {i}; {bump}token := {nxt}; }}"
        )
    src = f"""
var token: int = 0;
var count: int = 0;
{chr(10).join(threads)}
post: count == {num_threads};
"""
    suffix = "" if correct else "-bug"
    return parse(src, name=f"token-ring({num_threads}){suffix}")


def lockstep_counters(bound: int) -> ConcurrentProgram:
    """Two threads alternate under a turn variable; their counters stay
    in lockstep.  Post: x == y.  A lockstep preference order makes the
    representative interleaving trivial to annotate.
    """
    src = f"""
var x: int = 0;
var y: int = 0;
var turn: int = 0;
thread A {{
    while (*) {{
        atomic {{ assume turn == 0; assume x <= {bound}; x := x + 1; turn := 1; }}
    }}
}}
thread B {{
    while (*) {{
        atomic {{ assume turn == 1; y := y + 1; turn := 0; }}
    }}
}}
thread Check {{
    atomic {{ assume turn == 0; assert x == y; }}
}}
"""
    return parse(src, name=f"lockstep-counters({bound})")


def phase_protocol(num_workers: int) -> ConcurrentProgram:
    """Workers advance through explicit phases; a monitor asserts that
    the finished count never exceeds the started count.
    """
    src = f"""
var started: int = 0;
var finished: int = 0;
thread Worker[{num_workers}] {{
    atomic {{ started := started + 1; }}
    atomic {{ finished := finished + 1; }}
}}
thread Monitor {{
    assert finished <= started;
}}
"""
    return parse(src, name=f"phase-protocol({num_workers})")


def chunked_sum(num_threads: int) -> ConcurrentProgram:
    """Each thread contributes a fixed chunk to a shared total.

    Post: the total is the sum of the chunks — the counting argument the
    sequential-composition order handles well.
    """
    threads = "\n".join(
        f"thread Add{i} {{ total := total + {i + 1}; }}"
        for i in range(num_threads)
    )
    expected = num_threads * (num_threads + 1) // 2
    src = f"""
var total: int = 0;
{threads}
post: total == {expected};
"""
    return parse(src, name=f"chunked-sum({num_threads})")


def max_of_proposals(num_threads: int) -> ConcurrentProgram:
    """Threads fold their proposals into a running maximum.

    Post: the maximum dominates every proposal.
    """
    threads = "\n".join(
        f"thread P{i} {{ atomic {{ if (best < {i + 1}) {{ best := {i + 1}; }} }} }}"
        for i in range(num_threads)
    )
    src = f"""
var best: int = 0;
{threads}
post: best >= {num_threads};
"""
    return parse(src, name=f"max-proposals({num_threads})")


def handoff_chain(depth: int) -> ConcurrentProgram:
    """A value is incremented as it is handed from stage to stage.

    Post: the final value equals the chain depth — requires tracking the
    stage/value correlation through the handoff protocol.
    """
    threads = []
    for i in range(depth):
        threads.append(
            f"thread Stage{i} {{ assume stage == {i}; value := value + 1; stage := {i + 1}; }}"
        )
    src = f"""
var stage: int = 0;
var value: int = 0;
{chr(10).join(threads)}
post: value == {depth};
"""
    return parse(src, name=f"handoff-chain({depth})")


def balanced_workers(num_pairs: int) -> ConcurrentProgram:
    """Producer/consumer pairs keep a work queue counter balanced.

    The monitor asserts the queue never goes negative — the invariant
    relates all producers' and consumers' progress.
    """
    src = f"""
var queue: int = 0;
thread Producer[{num_pairs}] {{
    while (*) {{ atomic {{ queue := queue + 1; }} }}
}}
thread Consumer[{num_pairs}] {{
    while (*) {{ atomic {{ assume queue >= 1; queue := queue - 1; }} }}
}}
thread Monitor {{
    assert queue >= 0;
}}
"""
    return parse(src, name=f"balanced-workers({num_pairs})")
