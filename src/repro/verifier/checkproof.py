"""The proof check with on-the-fly, proof-sensitive sequentialization.

This is Algorithm 2 of the paper: a search over tuples

    ⟨ program location q, Floyd/Hoare assertion φ, sleep set S, context c ⟩

that simultaneously (a) constructs the reduction — persistent-set
pruning of the candidate letters, sleep-set pruning with *conditional*
commutativity a ↷↷_φ b relative to the current proof assertion — and
(b) checks that the candidate proof covers every trace of the reduction.
A state whose assertion is ⊥ is covered and never expanded; a violation
(or an exit state whose assertion does not entail the postcondition)
reached with a non-⊥ assertion yields a counterexample trace.

Two search strategies:

* ``"bfs"`` (default) — returns a *shortest* uncovered trace, which
  keeps refinement interpolants small;
* ``"dfs"`` — faithful to Algorithm 2, and supports the cross-round
  "useless state" cache of §7.2 (sound by monotonicity of
  proof-sensitive commutativity).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterator

from ..core.commutativity import (
    CommutativityRelation,
    ConditionalCommutativity,
)
from ..core.persistent import PersistentSetProvider
from ..core.preference import Context, PreferenceOrder
from ..lang.program import ConcurrentProgram, ProductState
from ..lang.statements import Statement
from ..logic import Term
from .hoare import FhState, FloydHoareAutomaton

CheckState = tuple[ProductState, FhState, frozenset[Statement], Context]


class CheckDeadlineExceeded(Exception):
    """The per-run time budget expired mid-round."""


@dataclass
class CheckOutcome:
    """Result of one proof check round."""

    counterexample: tuple[Statement, ...] | None
    states_explored: int
    assertions_seen: int  # distinct Floyd/Hoare assertions (proof size)

    @property
    def covered(self) -> bool:
        return self.counterexample is None


class UselessStateCache:
    """Cross-round cache of states that cannot reach a counterexample.

    A state ⟨q, S, c⟩ proven useless under predicate set Φ stays useless
    under any Φ' ⊇ Φ: assertions only strengthen across rounds, and
    proof-sensitive commutativity is monotone (§7.2).
    """

    def __init__(self) -> None:
        self._useless: dict[tuple, list[frozenset[int]]] = {}
        self.hits = 0

    def is_useless(self, key: tuple, predicates: FhState) -> bool:
        for recorded in self._useless.get(key, ()):
            if recorded <= predicates:
                self.hits += 1
                return True
        return False

    def mark(self, key: tuple, predicates: FhState) -> None:
        bucket = self._useless.setdefault(key, [])
        bucket[:] = [rec for rec in bucket if not (predicates <= rec)]
        if not any(rec <= predicates for rec in bucket):
            bucket.append(predicates)


class ProofChecker:
    """On-the-fly reduction construction integrated with the proof check."""

    def __init__(
        self,
        program: ConcurrentProgram,
        order: PreferenceOrder,
        commutativity: CommutativityRelation,
        *,
        mode: str = "combined",
        proof_sensitive: bool = True,
        search: str = "bfs",
        useless_cache: UselessStateCache | None = None,
        max_states: int | None = None,
        deadline: float | None = None,
        memoize_commutativity: bool = True,
    ) -> None:
        if search not in ("bfs", "dfs"):
            raise ValueError(f"unknown search strategy {search!r}")
        self.deadline = deadline  # absolute time.perf_counter() timestamp
        self.program = program
        self.order = order
        self.commutativity = commutativity
        self.mode = mode
        self.search = search
        self.max_states = max_states
        self.useless_cache = useless_cache
        self._conditional: ConditionalCommutativity | None = None
        if proof_sensitive and isinstance(commutativity, ConditionalCommutativity):
            self._conditional = commutativity
        self._persistent: PersistentSetProvider | None = None
        if mode in ("combined", "persistent"):
            self._persistent = PersistentSetProvider(
                program, order, commutativity
            )
        self._memoize = memoize_commutativity
        self._commute_entries: dict[
            tuple[int, int], tuple[list[FhState], list[FhState]]
        ] = {}
        #: proof-sensitive commutativity questions asked of this checker
        self.commute_queries = 0
        #: ... of which the monotone subsumption cache answered directly
        self.commute_subsumption_hits = 0

    # -- commutativity under the current assertion ---------------------------
    #
    # Proof-sensitive commutativity is monotone in the assertion (§7.2):
    # commuting under Φ implies commuting under any Φ' ⊇ Φ, and failing
    # under Φ implies failing under any Φ'' ⊆ Φ.  We exploit this with a
    # subsumption cache keyed by the Floyd/Hoare state's predicate set,
    # which avoids most solver queries across states and rounds.

    def _commute(
        self, fh: FloydHoareAutomaton, phi_state: FhState, a: Statement, b: Statement
    ) -> bool:
        if self._conditional is None:
            return self.commutativity.commute(a, b)
        self.commute_queries += 1
        pair = (a.uid, b.uid) if a.uid < b.uid else (b.uid, a.uid)
        entries = self._commute_entries.get(pair) if self._memoize else None
        if entries is not None:
            positives, negatives = entries
            for known in positives:
                if known <= phi_state:
                    self.commute_subsumption_hits += 1
                    return True
            for known in negatives:
                if known >= phi_state:
                    self.commute_subsumption_hits += 1
                    return False
        result = self._conditional.commute_under(fh.assertion(phi_state), a, b)
        if not self._memoize:
            return result
        if entries is None:
            entries = ([], [])
            self._commute_entries[pair] = entries
        entries[0 if result else 1].append(phi_state)
        return result

    def note_vocabulary_grown(self) -> None:
        """Apply the monotone invalidation rule after refinement.

        Growing the Floyd/Hoare vocabulary never falsifies an entry:
        positive verdicts recorded under predicate set Φ keep holding for
        any Φ' ⊇ Φ and negative verdicts for any Φ'' ⊆ Φ (monotonicity of
        proof-sensitive commutativity, §7.2).  What growth does change is
        which entries can still *fire* — so each subsumption list is
        compacted to its frontier: positives to their ⊆-minimal sets,
        negatives to their ⊇-maximal sets.  Every dropped entry was
        dominated by a kept one, so no answer changes; the lists the hot
        path scans linearly just stop growing round over round.
        """
        if self._conditional is not None:
            self._conditional.note_vocabulary_grown()
        for positives, negatives in self._commute_entries.values():
            positives[:] = [
                s
                for i, s in enumerate(positives)
                if not any(
                    other < s or (other == s and j < i)
                    for j, other in enumerate(positives)
                )
            ]
            negatives[:] = [
                s
                for i, s in enumerate(negatives)
                if not any(
                    other > s or (other == s and j < i)
                    for j, other in enumerate(negatives)
                )
            ]

    # -- successor generation (the reduction, on the fly) ----------------------

    def _successors(
        self, fh: FloydHoareAutomaton, state: CheckState
    ) -> Iterator[tuple[Statement, CheckState]]:
        q, phi_state, sleep, ctx = state
        if self.program.is_violation(q):
            return
        edges = sorted(
            self.program.successors(q),
            key=lambda e: self.order.key(ctx, e[0]),
        )
        enabled = [a for a, _ in edges]
        if self._persistent is not None:
            allowed = self._persistent.persistent_letters(q, ctx)
        else:
            allowed = None
        use_sleep = self.mode in ("combined", "sleep")
        for a, q2 in edges:
            if a in sleep:
                continue
            if allowed is not None and a not in allowed:
                continue
            if use_sleep:
                key_a = self.order.key(ctx, a)
                new_sleep = frozenset(
                    b
                    for b in enabled
                    if (b in sleep or self.order.key(ctx, b) < key_a)
                    and self._commute(fh, phi_state, a, b)
                )
            else:
                new_sleep = frozenset()
            yield a, (
                q2,
                fh.step(phi_state, a),
                new_sleep,
                self.order.advance(ctx, a),
            )

    # -- uncovered-state detection ------------------------------------------------

    def _uncovered(
        self, fh: FloydHoareAutomaton, state: CheckState, post: Term
    ) -> bool:
        """Does *state* witness that the proof candidate is insufficient?"""
        q, phi_state, _sleep, _ctx = state
        if fh.is_bottom(phi_state):
            return False
        if self.program.is_violation(q):
            return True
        if self.program.is_exit(q):
            return not fh.entails(phi_state, post)
        return False

    # -- the check ----------------------------------------------------------------

    def check(self, fh: FloydHoareAutomaton, pre: Term, post: Term) -> CheckOutcome:
        initial: CheckState = (
            self.program.initial_state(),
            fh.initial_state(pre),
            frozenset(),
            self.order.initial_context(),
        )
        if self.search == "bfs":
            return self._check_bfs(fh, initial, post)
        return self._check_dfs(fh, initial, post)

    def _check_bfs(
        self, fh: FloydHoareAutomaton, initial: CheckState, post: Term
    ) -> CheckOutcome:
        seen: set[CheckState] = {initial}
        assertions: set[FhState] = {initial[1]}
        parent: dict[CheckState, tuple[CheckState, Statement]] = {}
        queue: deque[CheckState] = deque([initial])
        ticks = 0
        while queue:
            state = queue.popleft()
            ticks += 1
            if ticks % 128 == 0:
                self._check_deadline()
            if self._uncovered(fh, state, post):
                return CheckOutcome(
                    self._trace_to(parent, state), len(seen), len(assertions)
                )
            if fh.is_bottom(state[1]):
                continue  # covered: the proof refutes everything below
            for a, nxt in self._successors(fh, state):
                if nxt in seen:
                    continue
                seen.add(nxt)
                if self.max_states is not None and len(seen) > self.max_states:
                    raise MemoryError("proof check exceeded its state budget")
                assertions.add(nxt[1])
                parent[nxt] = (state, a)
                queue.append(nxt)
        return CheckOutcome(None, len(seen), len(assertions))

    def _check_dfs(
        self, fh: FloydHoareAutomaton, initial: CheckState, post: Term
    ) -> CheckOutcome:
        """Iterative DFS (Algorithm 2) with sound useless-state marking.

        A state may only be marked useless if its exploration did not
        get cut off at a *grey* node (a state still on the DFS stack):
        such a cut is a cycle back into the current path, and the cycle
        target's subtree is not fully explored yet.  Taint from grey
        cuts propagates to all ancestors.
        """
        seen: set[CheckState] = set()
        on_stack: set[CheckState] = set()
        tainted: set[CheckState] = set()
        assertions: set[FhState] = set()
        path: list[Statement] = []
        cache = self.useless_cache

        stack: list[tuple] = [("visit", initial, None, None)]
        counterexample: tuple[Statement, ...] | None = None
        ticks = 0
        while stack:
            kind, state, letter, parent = stack.pop()
            ticks += 1
            if ticks % 128 == 0:
                self._check_deadline()
            if kind == "leave":
                if letter is not None:
                    path.pop()
                on_stack.discard(state)
                q, phi_state, sleep, ctx = state
                if state in tainted:
                    if parent is not None:
                        tainted.add(parent)
                elif cache is not None:
                    cache.mark((q, sleep, ctx), phi_state)
                continue
            if state in seen:
                if state in on_stack or state in tainted:
                    # grey cut (cycle) or known-tainted: parent cannot be
                    # marked useless based on this child
                    if parent is not None:
                        tainted.add(parent)
                continue
            q, phi_state, sleep, ctx = state
            if cache is not None and cache.is_useless((q, sleep, ctx), phi_state):
                continue
            seen.add(state)
            if self.max_states is not None and len(seen) > self.max_states:
                raise MemoryError("proof check exceeded its state budget")
            assertions.add(phi_state)
            if letter is not None:
                path.append(letter)
            if self._uncovered(fh, state, post):
                counterexample = tuple(path)
                break
            on_stack.add(state)
            stack.append(("leave", state, letter, parent))
            if fh.is_bottom(phi_state):
                continue
            for a, nxt in reversed(list(self._successors(fh, state))):
                stack.append(("visit", nxt, a, state))
        return CheckOutcome(counterexample, len(seen), len(assertions))

    def _check_deadline(self) -> None:
        if self.deadline is not None:
            import time

            if time.perf_counter() > self.deadline:
                raise CheckDeadlineExceeded()

    @staticmethod
    def _trace_to(
        parent: dict[CheckState, tuple[CheckState, Statement]],
        state: CheckState,
    ) -> tuple[Statement, ...]:
        trace: list[Statement] = []
        while state in parent:
            state, letter = parent[state]
            trace.append(letter)
        trace.reverse()
        return tuple(trace)
