"""Table 2: proof size and proof-check efficiency across tool variants.

Columns: Automizer (baseline), GemCutter portfolio, sleep-set-only,
persistent-set-only, and lockstep-only.  Rows: average proof size on
successfully verified *correct* programs, and average time per
refinement round on all successfully analysed programs — per suite and
total.

Paper shape: persistent sets contribute most to proof-check efficiency
(lowest time/round); the portfolio gives the smallest proofs.
"""

from repro.benchmarks import suite
from repro.harness import emit, emit_json, run_suite
from repro.verifier import Verdict

TOOLS = ("baseline", "portfolio", "sleep", "persistent", "lockstep")
SUITES = ("svcomp", "weaver")


def _run():
    stats = {}
    for tool in TOOLS:
        per_suite = {}
        for suite_name in SUITES:
            proof_sizes = []
            round_times = []
            for _bench, result in run_suite(tool, suite(suite_name)):
                if result.verdict == Verdict.CORRECT:
                    proof_sizes.append(result.proof_size)
                if result.verdict.solved and result.rounds:
                    round_times.append(result.time_seconds / result.rounds)
            per_suite[suite_name] = (proof_sizes, round_times)
        stats[tool] = per_suite
    return stats


def _avg(values):
    return sum(values) / len(values) if values else float("nan")


def test_table2_tool_variants(benchmark):
    stats = benchmark.pedantic(_run, rounds=1, iterations=1)
    header = f"{'':12s}" + "".join(f"{t:>12s}" for t in TOOLS)
    lines = ["Proof size for successfully verified correct programs", header]

    def row(label, pick):
        cells = "".join(f"{pick(stats[t]):>12.2f}" for t in TOOLS)
        lines.append(f"{label:12s}{cells}")

    row("total", lambda s: _avg(s["svcomp"][0] + s["weaver"][0]))
    row("- svcomp", lambda s: _avg(s["svcomp"][0]))
    row("- weaver", lambda s: _avg(s["weaver"][0]))
    lines.append("")
    lines.append("Time per refinement round (s) for successfully analysed programs")
    lines.append(header)
    row("total", lambda s: _avg(s["svcomp"][1] + s["weaver"][1]))
    row("- svcomp", lambda s: _avg(s["svcomp"][1]))
    row("- weaver", lambda s: _avg(s["weaver"][1]))
    emit("table2", lines)
    emit_json(
        "table2",
        {
            tool: {
                sn: {
                    "avg_proof": _avg(stats[tool][sn][0]),
                    "avg_time_per_round": _avg(stats[tool][sn][1]),
                }
                for sn in SUITES
            }
            for tool in TOOLS
        },
    )
    # sanity: every variant solved correct programs in both suites
    for tool in TOOLS:
        assert stats[tool]["svcomp"][0], tool
        assert stats[tool]["weaver"][0], tool
