"""Command-line interface.

Usage (after installation)::

    python -m repro verify FILE [--order seq|lockstep|rand:N] [--mode ...]
    python -m repro portfolio FILE
    python -m repro reduce FILE [--order ...] [--dot out.dot]
    python -m repro check FILE          # parse + static sanity only
    python -m repro bench-list          # registry overview

``FILE`` contains a program in the mini concurrent language (see
README.md / `examples/`).  Use ``-`` for stdin.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .automata import count_reachable_states, materialize
from .automata.dot import to_dot
from .core import (
    ConditionalCommutativity,
    LockstepOrder,
    RandomOrder,
    SyntacticCommutativity,
    ThreadUniformOrder,
    reduce_program,
)
from .lang import ConcurrentProgram, ParseError, parse
from .logic import Solver
from .verifier import ENGINE_CHOICES, VerifierConfig, default_engine, verify, verify_portfolio


def _read_program(path: str) -> ConcurrentProgram:
    if path == "-":
        source = sys.stdin.read()
        name = "<stdin>"
    else:
        source = Path(path).read_text()
        name = Path(path).stem
    return parse(source, name=name)


def _make_order(spec: str, program: ConcurrentProgram):
    if spec == "seq":
        return ThreadUniformOrder()
    if spec == "lockstep":
        return LockstepOrder(len(program.threads))
    if spec.startswith("rand:"):
        return RandomOrder(program.alphabet(), int(spec.split(":", 1)[1]))
    raise SystemExit(f"unknown order {spec!r} (use seq, lockstep, or rand:N)")


def _store_path(args: argparse.Namespace) -> str | None:
    """Resolve the proof-store path: flag wins, then the env knob."""
    import os

    if args.no_proof_store:
        return None
    return args.proof_store or os.environ.get("REPRO_PROOF_STORE") or None


def _cmd_verify(args: argparse.Namespace) -> int:
    program = _read_program(args.file)
    order = _make_order(args.order, program)
    solver = Solver()
    fault_plan = _parse_fault_plan(args.inject_faults)
    if fault_plan is not None:
        injector = fault_plan.injector_for(order.name)
        if injector is not None:
            solver.fault_injector = injector
    config = VerifierConfig(
        mode=args.mode,
        proof_sensitive=not args.no_proof_sensitive,
        search=args.search,
        use_useless_cache=args.useless_cache,
        max_rounds=args.max_rounds,
        time_budget=args.timeout,
        simplify_proof=args.show_proof,
        incremental=not args.no_incremental,
        store_path=_store_path(args),
        engine=args.engine or default_engine(),
    )
    if args.per_thread:
        from .verifier import combine_verdicts, verify_each_thread

        results = verify_each_thread(
            program, order, ConditionalCommutativity(solver), config=config
        )
        for member in results:
            print(f"  {member.summary()}")
        verdict = combine_verdicts(results)
        print(f"combined: {verdict.value}")
        if args.show_cache_stats:
            for member in results:
                _print_cache_stats(member)
        return 0 if verdict.solved else 1
    result = verify(
        program, order, ConditionalCommutativity(solver), config=config,
        solver=solver,
    )
    print(result.summary())
    if result.counterexample is not None:
        print("counterexample:")
        for statement in result.counterexample:
            print(f"  {statement.label}")
    if args.show_proof and result.predicates:
        print("proof predicates:")
        for predicate in result.predicates:
            print(f"  {predicate!r}")
    if args.show_cache_stats:
        _print_cache_stats(result)
    return 0 if result.verdict.solved else 1


def _cmd_diff_verify(args: argparse.Namespace) -> int:
    """Verify NEW as an edit against OLD, reusing unchanged-thread facts.

    Requires a persistent proof store: the baseline's program shape,
    Hoare/commutativity facts, and exploration log live there.  If the
    store has no record of OLD yet, OLD is verified first (a normal
    store-backed run) and NEW is then verified with
    ``baseline_digest`` pointing at it.
    """
    from .delta import diff_programs
    from .store import KIND_SHAPE, ProofStore, program_digest

    store_path = _store_path(args)
    if store_path is None:
        raise SystemExit(
            "diff-verify needs a persistent proof store "
            "(--proof-store PATH or REPRO_PROOF_STORE)"
        )
    old_program = _read_program(args.old)
    new_program = _read_program(args.new)
    baseline_hex = program_digest(old_program).hex()
    plan = diff_programs(old_program, new_program)
    print(f"baseline: {old_program.name} [{baseline_hex[:12]}]")
    print(f"edit plan: {plan.summary()}")

    solver = Solver()

    def config_for(baseline: str | None) -> VerifierConfig:
        return VerifierConfig(
            mode=args.mode,
            search=args.search,
            max_rounds=args.max_rounds,
            time_budget=args.timeout,
            incremental=not args.no_incremental,
            store_path=store_path,
            engine=args.engine or default_engine(),
            baseline_digest=baseline,
        )

    store = ProofStore(store_path)
    if store.get(KIND_SHAPE, program_digest(old_program)) is None:
        print("baseline not in store; verifying OLD first")
        base_result = verify(
            old_program,
            _make_order(args.order, old_program),
            ConditionalCommutativity(solver),
            config=config_for(None),
            solver=solver,
        )
        print(f"  {base_result.summary()}")
    result = verify(
        new_program,
        _make_order(args.order, new_program),
        ConditionalCommutativity(Solver()),
        config=config_for(baseline_hex),
    )
    print(result.summary())
    if result.counterexample is not None:
        print("counterexample:")
        for statement in result.counterexample:
            print(f"  {statement.label}")
    if args.show_cache_stats:
        _print_cache_stats(result)
    return 0 if result.verdict.solved else 1


def _cmd_store(args: argparse.Namespace) -> int:
    import json

    from .store import ProofStore

    if args.store_command == "inspect":
        info = ProofStore(args.path).inspect()
        if args.json:
            print(json.dumps(info, indent=2))
            return 0
        print(f"store {info['path']} (format {info['format']}, "
              f"max_records {info['max_records']})")
        print(f"entries: {info['total_entries']}")
        for kind, count in sorted(info["entries_by_kind"].items()):
            print(f"  {kind:8s} {count}")
        segments = info["segments"]
        total = sum(s["bytes"] for s in segments)
        print(f"segments: {len(segments)} ({total} bytes)")
        for segment in segments:
            print(f"  {segment['name']:32s} {segment['bytes']:>10d} bytes")
        if info.get("outcome_families"):
            print("outcome rows (triage advisory):")
            for family, count in sorted(info["outcome_families"].items()):
                print(f"  {family:24s} {count}")
        if info["load_warnings"]:
            print(f"load warnings: {info['load_warnings']}")
        return 0
    raise SystemExit(f"unknown store command {args.store_command!r}")


def _print_cache_stats(result) -> None:
    if result.query_stats is None:
        print("cache stats: unavailable for this run")
        return
    print("cache stats:")
    for line in result.query_stats.summary().splitlines():
        print(f"  {line}")


def _parse_fault_plan(spec: str | None):
    if not spec:
        return None
    from .verifier import FaultPlan, FaultSpecError

    try:
        return FaultPlan.parse(spec)
    except FaultSpecError as exc:
        raise SystemExit(f"bad --inject-faults spec: {exc}")


def _cmd_portfolio(args: argparse.Namespace) -> int:
    program = _read_program(args.file)
    config = VerifierConfig(
        max_rounds=args.max_rounds,
        time_budget=args.timeout,
        incremental=not args.no_incremental,
        store_path=_store_path(args),
        engine=args.engine or default_engine(),
        triage=args.triage,
    )
    if args.parallel_portfolio:
        from .verifier import RetryPolicy

        outcome = verify_portfolio(
            program,
            config=config,
            strategy="parallel",
            member_timeout=args.member_timeout,
            retry=RetryPolicy(max_attempts=1 + args.max_retries),
            fault_plan=_parse_fault_plan(args.inject_faults),
        )
    else:
        outcome = verify_portfolio(
            program,
            config=config,
            fault_plan=_parse_fault_plan(args.inject_faults),
        )
    for member in outcome.members:
        print(f"  {member.summary()}")
    aggregated = outcome.aggregate()
    print(aggregated.summary())
    if outcome.wall_seconds is not None:
        print(f"wall clock: {outcome.wall_seconds:.2f}s ({outcome.strategy})")
    if args.show_cache_stats:
        _print_cache_stats(aggregated)
    return 0 if aggregated.verdict.solved else 1


def _cmd_orders(args: argparse.Namespace) -> int:
    """Print the triage plan without running anything."""
    from .store import ProofStore
    from .verifier import plan_portfolio, standard_orders

    program = _read_program(args.file)
    store_path = _store_path(args)
    store = ProofStore(store_path) if store_path else None
    plan = plan_portfolio(
        program,
        standard_orders(program),
        time_budget=args.timeout,
        store=store,
    )
    feats = plan.features
    print(f"{program.name}: family={plan.family}  threads={feats.num_threads}  "
          f"|Σ|={feats.alphabet_size}")
    print(f"features: conflict_density={feats.conflict_density:.3f}  "
          f"guard_density={feats.guard_density:.3f}")
    print("ranked members:")
    for i, member in enumerate(plan.ranked, start=1):
        tag = " (refit)" if member.fitted else ""
        dispersion = feats.dispersion.get(member.order_name, 0.0)
        print(f"  {i}. {member.order_name:12s} score={member.score:+.3f}  "
              f"kind={member.kind}{tag}  dispersion={dispersion:.3f}")
    stages = ", ".join(
        "full" if b is None else f"{b:.2f}s" for b in plan.stage_budgets
    )
    print(f"budget ladder: [{stages}]")
    return 0


def _cmd_reduce(args: argparse.Namespace) -> int:
    program = _read_program(args.file)
    order = _make_order(args.order, program)
    relation = SyntacticCommutativity()
    full = count_reachable_states(
        program.product_view("both"), max_states=args.max_states
    )
    print(f"program size (locations): {program.size}")
    print(f"full product states:      {full}")
    for mode in ("sleep", "persistent", "combined"):
        reduced = reduce_program(program, order, relation, mode=mode)
        states = count_reachable_states(reduced, max_states=args.max_states)
        print(f"{mode:10s} reduction:     {states}")
    if args.dot:
        reduced = reduce_program(program, order, relation, mode="combined")
        dfa = materialize(reduced, program.alphabet(), max_states=args.max_states)
        dot = to_dot(
            dfa,
            name=program.name,
            state_label=lambda s: str(s[0]),
            letter_label=lambda a: a.label,
        )
        Path(args.dot).write_text(dot)
        print(f"wrote {args.dot}")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    try:
        program = _read_program(args.file)
    except ParseError as exc:
        print(f"parse error: {exc}", file=sys.stderr)
        return 1
    print(f"{program.name}: {len(program.threads)} threads, "
          f"size {program.size}, |Σ| = {len(program.alphabet())}, "
          f"asserts: {'yes' if program.has_asserts() else 'no'}")
    return 0


def _cmd_bench_list(_args: argparse.Namespace) -> int:
    from .benchmarks import all_benchmarks

    for bench in all_benchmarks():
        print(f"{bench.suite:8s} {bench.expected:10s} {bench.name}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .service.policy import (
        AdmissionPolicy,
        BreakerPolicy,
        RetryPolicy,
        ServicePolicies,
    )
    from .service.server import ServiceConfig, serve_main

    config = ServiceConfig(
        socket_path=args.socket,
        journal_path=args.journal,
        workers=args.workers,
        verifier=VerifierConfig(
            max_rounds=args.max_rounds,
            time_budget=args.timeout,
            store_path=_store_path(args),
            engine=args.engine or default_engine(),
        ),
        policies=ServicePolicies(
            admission=AdmissionPolicy(
                max_queue_depth=args.max_queue_depth,
                max_tenant_outstanding=args.max_tenant_outstanding,
            ),
            retry=RetryPolicy(max_attempts=args.max_attempts),
            breaker=BreakerPolicy(
                threshold=args.breaker_threshold,
                cooldown_seconds=args.breaker_cooldown,
            ),
        ),
        member_timeout=args.member_timeout,
        fault_plan=_parse_fault_plan(args.inject_faults),
        fault_fraction=args.fault_fraction,
        fault_attempts=args.fault_attempts,
    )
    return serve_main(config)


def _submit_spec(args: argparse.Namespace, *, bench=None, path=None) -> dict:
    spec: dict = {"order": args.order, "tenant": args.tenant}
    if bench is not None:
        spec["bench"] = bench
    else:
        spec["source"] = Path(path).read_text()
        spec["name"] = Path(path).stem
    if args.job_timeout is not None:
        spec["timeout"] = args.job_timeout
    if args.max_attempts is not None:
        spec["max_attempts"] = args.max_attempts
    if args.cost != 1:
        spec["cost"] = args.cost
    if args.engine is not None:
        spec["engine"] = args.engine
    if getattr(args, "baseline_digest", None):
        spec["baseline_digest"] = args.baseline_digest
    if getattr(args, "no_triage", False):
        spec["triage"] = False
    return spec


def _cmd_submit(args: argparse.Namespace) -> int:
    from .service.client import ServiceClient, ServiceError
    from .verifier.stats import QueryStats

    if not args.files and not args.bench:
        raise SystemExit("nothing to submit (give FILEs and/or --bench)")
    specs = [_submit_spec(args, bench=b) for b in args.bench or ()]
    specs += [_submit_spec(args, path=f) for f in args.files]
    exit_code = 0
    with ServiceClient(args.socket, timeout=args.wait_timeout) as client:
        reply = client.submit(specs)
        ids = []
        for spec, entry in zip(specs, reply["jobs"]):
            label = spec.get("bench") or spec.get("name")
            if "id" in entry:
                ids.append((label, entry["id"]))
                print(f"accepted {entry['id']}  {label}")
            else:
                print(f"shed     {label}: {entry.get('reason')}")
                exit_code = 1
        if args.no_wait:
            return exit_code
        on_event = None
        if args.stream:
            def on_event(event):  # noqa: E306 - tiny CLI callback
                print(f"  [{event.get('id')}] {event}")
        for label, job_id in ids:
            try:
                view = client.wait(
                    job_id, timeout=args.wait_timeout, on_event=on_event
                )
            except ServiceError as exc:
                print(f"{job_id}  {label}: {exc}")
                exit_code = 1
                continue
            result = view.get("result") or {}
            verdict = result.get("verdict", view["state"])
            print(
                f"{job_id}  {label}: {verdict}  "
                f"rounds={result.get('rounds', 0)}  "
                f"attempts={view.get('attempts', 0)}  "
                f"time={result.get('time_s', 0.0):.2f}s"
            )
            if verdict not in ("correct", "incorrect"):
                exit_code = 1
            if args.show_cache_stats and result.get("query_stats"):
                stats = QueryStats.from_dict(result["query_stats"])
                print("cache stats:")
                for line in stats.summary().splitlines():
                    print(f"  {line}")
    return exit_code


def _cmd_status(args: argparse.Namespace) -> int:
    import json

    from .service.client import ServiceClient

    with ServiceClient(args.socket) as client:
        if args.cancel:
            print(json.dumps(client.cancel(args.cancel), indent=2))
            return 0
        if args.drain:
            print(json.dumps(client.drain(), indent=2))
            return 0
        if args.stats:
            print(json.dumps(client.stats(), indent=2))
            return 0
        if args.job_id:
            print(json.dumps(client.status(args.job_id)["job"], indent=2))
            return 0
        health = client.health()
        status = client.status()
        health.pop("ok", None)
        status.pop("ok", None)
        print(json.dumps({**health, **status}, indent=2))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Sound sequentialization for concurrent program verification",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def engine_flag(p):
        p.add_argument(
            "--engine", default=None, choices=ENGINE_CHOICES,
            help="exploration engine: 'pure' (rich-object layers, the "
                 "differential oracle) or 'fast' (integer ids/bitmasks; "
                 "bit-identical exploration, falls back to pure when the "
                 "alphabet exceeds 64 letters); defaults to REPRO_ENGINE "
                 "or 'fast'",
        )

    def common_flags(p):
        p.add_argument("--max-rounds", type=int, default=60)
        p.add_argument("--timeout", type=float, default=None, help="seconds")
        p.add_argument(
            "--show-cache-stats", action="store_true",
            help="report solver/commutativity query counts and cache hit rates",
        )
        engine_flag(p)
        p.add_argument(
            "--no-incremental", action="store_true",
            help="disable incremental CEGAR rounds (delta-aware "
                 "Floyd/Hoare steps and warm-started proof checks); "
                 "restores bit-identical pre-incremental exploration",
        )
        p.add_argument(
            "--inject-faults", metavar="SPEC", default=None,
            help="deterministic fault-injection spec, e.g. "
                 "'seed=7;p_unknown=0.05;seq:crash_at=0' "
                 "(see docs/runtime.md; REPRO_FAULTS is the env equivalent)",
        )
        p.add_argument(
            "--proof-store", metavar="PATH", default=None,
            help="persistent content-addressed proof store directory; "
                 "solved solver/Hoare/commutativity verdicts are reused "
                 "across runs (REPRO_PROOF_STORE is the env equivalent; "
                 "the flag wins when both are set)",
        )
        p.add_argument(
            "--no-proof-store", action="store_true",
            help="ignore --proof-store and REPRO_PROOF_STORE; run cold",
        )

    def common(p):
        p.add_argument("file", help="program file ('-' for stdin)")
        common_flags(p)

    p_verify = sub.add_parser("verify", help="verify a program")
    common(p_verify)
    p_verify.add_argument("--order", default="seq")
    p_verify.add_argument(
        "--mode", default="combined",
        choices=("combined", "sleep", "persistent", "none"),
    )
    p_verify.add_argument("--search", default="bfs", choices=("bfs", "dfs"))
    p_verify.add_argument(
        "--useless-cache", action="store_true",
        help="cross-round useless-state cache (dfs search only)",
    )
    p_verify.add_argument("--no-proof-sensitive", action="store_true")
    p_verify.add_argument("--show-proof", action="store_true")
    p_verify.add_argument(
        "--per-thread", action="store_true",
        help="analyse each thread's asserts separately (footnote 4)",
    )
    p_verify.set_defaults(func=_cmd_verify)

    p_diff = sub.add_parser(
        "diff-verify",
        help="verify NEW as an edit of OLD, reusing unchanged-thread "
             "facts and replaying the baseline exploration log",
    )
    p_diff.add_argument("old", help="baseline program file")
    p_diff.add_argument("new", help="edited program file")
    common_flags(p_diff)
    p_diff.add_argument("--order", default="seq")
    p_diff.add_argument(
        "--mode", default="combined",
        choices=("combined", "sleep", "persistent", "none"),
    )
    p_diff.add_argument("--search", default="bfs", choices=("bfs", "dfs"))
    p_diff.set_defaults(func=_cmd_diff_verify)

    p_store = sub.add_parser(
        "store", help="inspect a persistent proof store"
    )
    store_sub = p_store.add_subparsers(dest="store_command", required=True)
    p_inspect = store_sub.add_parser(
        "inspect", help="print per-kind entry counts and segment sizes"
    )
    p_inspect.add_argument("path", help="proof store directory")
    p_inspect.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    p_inspect.set_defaults(func=_cmd_store)

    p_portfolio = sub.add_parser(
        "portfolio", help="verify with the 5-order portfolio"
    )
    common(p_portfolio)
    p_portfolio.add_argument(
        "--parallel-portfolio", action="store_true",
        help="run members in isolated worker processes with crash "
             "containment, watchdog deadlines, and first-winner "
             "cancellation (default: sequential emulation)",
    )
    p_portfolio.add_argument(
        "--member-timeout", type=float, default=None, metavar="SECONDS",
        help="hard per-member wall-clock watchdog; overrunning workers "
             "are SIGKILLed and recorded as TIMEOUT",
    )
    p_portfolio.add_argument(
        "--max-retries", type=int, default=0, metavar="N",
        help="respawn UNKNOWN/TIMEOUT/ERROR members up to N times with "
             "doubled solver budgets and deadlines",
    )
    p_portfolio.add_argument(
        "--triage", dest="triage", action="store_true", default=True,
        help="feature-ranked member order, staged budget ladder, and "
             "progress-based loser preemption (default: on)",
    )
    p_portfolio.add_argument(
        "--no-triage", dest="triage", action="store_false",
        help="flat portfolio: canonical member order, full budgets, no "
             "preemption",
    )
    p_portfolio.set_defaults(func=_cmd_portfolio)

    p_orders = sub.add_parser(
        "orders",
        help="print the triage plan: ranked portfolio members with "
             "feature scores and the staged budget ladder",
    )
    p_orders.add_argument("file", help="program file ('-' for stdin)")
    p_orders.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="member budget the ladder is derived from (no ladder "
             "when omitted)",
    )
    p_orders.add_argument("--proof-store", metavar="PATH", default=None)
    p_orders.add_argument("--no-proof-store", action="store_true")
    p_orders.set_defaults(func=_cmd_orders)

    p_reduce = sub.add_parser(
        "reduce", help="report reduction automaton sizes"
    )
    p_reduce.add_argument("file")
    p_reduce.add_argument("--order", default="seq")
    p_reduce.add_argument("--max-states", type=int, default=200_000)
    p_reduce.add_argument("--dot", help="write the reduction DFA as DOT")
    p_reduce.set_defaults(func=_cmd_reduce)

    p_check = sub.add_parser("check", help="parse and report program stats")
    p_check.add_argument("file")
    p_check.set_defaults(func=_cmd_check)

    p_list = sub.add_parser("bench-list", help="list the benchmark registry")
    p_list.set_defaults(func=_cmd_bench_list)

    def socket_flag(p):
        from .service.protocol import DEFAULT_SOCKET

        p.add_argument(
            "--socket", default=DEFAULT_SOCKET, metavar="PATH",
            help="service Unix socket path",
        )

    p_serve = sub.add_parser(
        "serve", help="run the resilient verification service"
    )
    socket_flag(p_serve)
    p_serve.add_argument(
        "--journal", default="repro-jobs.journal", metavar="PATH",
        help="crash-recoverable job journal (replayed on restart)",
    )
    p_serve.add_argument("--workers", type=int, default=4)
    p_serve.add_argument("--max-rounds", type=int, default=60)
    p_serve.add_argument(
        "--timeout", type=float, default=None,
        help="base per-job verifier time budget (seconds)",
    )
    p_serve.add_argument(
        "--member-timeout", type=float, default=60.0, metavar="SECONDS",
        help="hard per-attempt watchdog; overrunning workers are killed",
    )
    p_serve.add_argument("--max-queue-depth", type=int, default=256)
    p_serve.add_argument(
        "--max-tenant-outstanding", type=int, default=64,
        help="per-tenant admission budget (outstanding job cost)",
    )
    p_serve.add_argument(
        "--max-attempts", type=int, default=3,
        help="attempts per job (escalating budgets, seeded backoff)",
    )
    p_serve.add_argument(
        "--breaker-threshold", type=int, default=3,
        help="worker-level faults per tenant/family before quarantine",
    )
    p_serve.add_argument("--breaker-cooldown", type=float, default=5.0)
    p_serve.add_argument(
        "--inject-faults", metavar="SPEC", default=None,
        help="chaos: seeded fault plan injected into worker attempts",
    )
    p_serve.add_argument(
        "--fault-fraction", type=float, default=1.0,
        help="fraction of jobs whose first attempts get the fault plan",
    )
    p_serve.add_argument(
        "--fault-attempts", type=int, default=1,
        help="inject only into attempts <= N (transient-fault model)",
    )
    p_serve.add_argument("--proof-store", metavar="PATH", default=None)
    p_serve.add_argument("--no-proof-store", action="store_true")
    engine_flag(p_serve)
    p_serve.set_defaults(func=_cmd_serve)

    p_submit = sub.add_parser(
        "submit", help="submit jobs to a running service"
    )
    socket_flag(p_submit)
    p_submit.add_argument(
        "files", nargs="*", help="program files to verify"
    )
    p_submit.add_argument(
        "--bench", action="append", metavar="NAME",
        help="registry benchmark to verify (repeatable)",
    )
    p_submit.add_argument("--order", default="seq")
    p_submit.add_argument("--tenant", default="default")
    p_submit.add_argument("--cost", type=int, default=1)
    p_submit.add_argument(
        "--job-timeout", type=float, default=None, metavar="SECONDS",
        help="per-attempt watchdog override for these jobs",
    )
    p_submit.add_argument(
        "--max-attempts", type=int, default=None,
        help="retry-budget override for these jobs",
    )
    p_submit.add_argument(
        "--no-wait", action="store_true",
        help="return after the admission ack instead of waiting",
    )
    p_submit.add_argument(
        "--stream", action="store_true",
        help="print progress/attempt/retry events while waiting",
    )
    p_submit.add_argument(
        "--wait-timeout", type=float, default=600.0, metavar="SECONDS",
    )
    p_submit.add_argument("--show-cache-stats", action="store_true")
    p_submit.add_argument(
        "--baseline-digest", metavar="HEX", default=None,
        help="program digest of a previously verified baseline; the "
             "worker serves unchanged-thread facts from its proof store "
             "(delta verification of an edit against a prior job)",
    )
    p_submit.add_argument(
        "--no-triage", action="store_true",
        help="disable portfolio triage for these jobs (worker-side "
             "VerifierConfig override)",
    )
    engine_flag(p_submit)
    p_submit.set_defaults(func=_cmd_submit)

    p_status = sub.add_parser(
        "status", help="inspect or administer a running service"
    )
    socket_flag(p_status)
    p_status.add_argument("job_id", nargs="?", help="job id to inspect")
    p_status.add_argument(
        "--stats", action="store_true", help="print service counters"
    )
    p_status.add_argument(
        "--drain", action="store_true",
        help="graceful shutdown: finish in-flight jobs, flush, exit",
    )
    p_status.add_argument(
        "--cancel", metavar="JOB_ID", help="cancel a queued/running job"
    )
    p_status.set_defaults(func=_cmd_status)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
