"""The benchmark registry: the corpora used by the evaluation harness.

Two suites, mirroring §8 of the paper:

* ``svcomp`` — SV-COMP-like, dominated by incorrect (bug-finding) tasks;
* ``weaver`` — Weaver-like, almost entirely correct, proof-heavy.

Each entry records the *expected* verdict, used both as test oracle and
to split result tables into correct/incorrect rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

from ..lang import ConcurrentProgram
from . import arrays, mutex, svcomp, weaver
from .bluetooth import bluetooth


@dataclass(frozen=True)
class Benchmark:
    """A named program instance with its ground-truth verdict."""

    name: str
    suite: str  # "svcomp" | "weaver"
    expected: str  # "correct" | "incorrect"
    factory: Callable[[], ConcurrentProgram]

    def build(self) -> ConcurrentProgram:
        return self.factory()


def _entry(suite: str, expected: str, factory: Callable[[], ConcurrentProgram]) -> Benchmark:
    program = factory()
    return Benchmark(program.name, suite, expected, factory)


def _svcomp_entries() -> list[Benchmark]:
    correct: list[Callable[[], ConcurrentProgram]] = [
        lambda: svcomp.mutex_atomic(2),
        lambda: svcomp.mutex_atomic(3),
        lambda: svcomp.counter_sum(2),
        lambda: svcomp.counter_sum(3),
        lambda: svcomp.producer_consumer(2),
        lambda: svcomp.producer_consumer(3),
        lambda: svcomp.bank_account(2),
        lambda: svcomp.peterson(),
        lambda: svcomp.ticket_lock(2),
        lambda: svcomp.flag_barrier(2),
        lambda: svcomp.reorder(1),
        lambda: svcomp.reorder(2),
        lambda: svcomp.increment_decrement(2),
        lambda: svcomp.mutex_atomic(4),
        lambda: svcomp.counter_sum(4),
        lambda: svcomp.flag_barrier(3),
        lambda: bluetooth(2),
        lambda: bluetooth(3),
        lambda: bluetooth(4),
        lambda: arrays.parallel_init(2),
        lambda: arrays.parallel_init(3),
        lambda: arrays.pointer_handoff(),
        lambda: mutex.dekker(),
        lambda: mutex.readers_writer(2),
        lambda: mutex.readers_writer(3),
        lambda: mutex.double_observer(),
    ]
    incorrect: list[Callable[[], ConcurrentProgram]] = [
        lambda: svcomp.mutex_atomic(2, correct=False),
        lambda: svcomp.mutex_atomic(3, correct=False),
        lambda: svcomp.counter_sum(2, correct=False),
        lambda: svcomp.counter_sum(3, correct=False),
        lambda: svcomp.counter_sum(4, correct=False),
        lambda: svcomp.producer_consumer(2, correct=False),
        lambda: svcomp.producer_consumer(3, correct=False),
        lambda: svcomp.producer_consumer(4, correct=False),
        lambda: svcomp.bank_account(2, correct=False),
        lambda: svcomp.bank_account(3, correct=False),
        lambda: svcomp.peterson(correct=False),
        lambda: svcomp.ticket_lock(2, correct=False),
        lambda: svcomp.ticket_lock(3, correct=False),
        lambda: svcomp.flag_barrier(2, correct=False),
        lambda: svcomp.flag_barrier(3, correct=False),
        lambda: svcomp.reorder(1, correct=False),
        lambda: svcomp.reorder(2, correct=False),
        lambda: svcomp.reorder(3, correct=False),
        lambda: svcomp.increment_decrement(2, correct=False),
        lambda: svcomp.increment_decrement(3, correct=False),
        lambda: bluetooth(2, correct=False),
        lambda: bluetooth(3, correct=False),
        lambda: arrays.parallel_init(3, correct=False),
        lambda: arrays.pointer_handoff(correct=False),
        lambda: arrays.shared_buffer(2, correct=False),
        lambda: mutex.dekker(correct=False),
        lambda: mutex.readers_writer(2, correct=False),
        lambda: mutex.double_observer(correct=False),
    ]
    return [_entry("svcomp", "correct", f) for f in correct] + [
        _entry("svcomp", "incorrect", f) for f in incorrect
    ]


def _weaver_entries() -> list[Benchmark]:
    correct: list[Callable[[], ConcurrentProgram]] = [
        lambda: weaver.token_ring(3),
        lambda: weaver.token_ring(4),
        lambda: weaver.token_ring(5),
        lambda: weaver.lockstep_counters(2),
        lambda: weaver.lockstep_counters(3),
        lambda: weaver.phase_protocol(2),
        lambda: weaver.phase_protocol(3),
        lambda: weaver.chunked_sum(3),
        lambda: weaver.chunked_sum(4),
        lambda: weaver.max_of_proposals(3),
        lambda: weaver.max_of_proposals(4),
        lambda: weaver.handoff_chain(3),
        lambda: weaver.handoff_chain(4),
        lambda: weaver.handoff_chain(5),
        lambda: weaver.balanced_workers(1),
        lambda: weaver.balanced_workers(2),
        lambda: weaver.token_ring(6),
        lambda: weaver.handoff_chain(6),
        lambda: weaver.lockstep_counters(4),
        lambda: weaver.phase_protocol(4),
    ]
    incorrect = [lambda: weaver.token_ring(3, correct=False)]
    return [_entry("weaver", "correct", f) for f in correct] + [
        _entry("weaver", "incorrect", f) for f in incorrect
    ]


_ALL: list[Benchmark] | None = None


def all_benchmarks() -> list[Benchmark]:
    """The full registry (cached)."""
    global _ALL
    if _ALL is None:
        _ALL = _svcomp_entries() + _weaver_entries()
        names = [b.name for b in _ALL]
        if len(names) != len(set(names)):  # pragma: no cover - sanity
            raise AssertionError("duplicate benchmark names in the registry")
    return _ALL


def suite(name: str) -> list[Benchmark]:
    """Benchmarks of one suite ("svcomp" or "weaver")."""
    entries = [b for b in all_benchmarks() if b.suite == name]
    if not entries:
        raise ValueError(f"unknown suite {name!r}")
    return entries


def by_name(name: str) -> Benchmark:
    for b in all_benchmarks():
        if b.name == name:
            return b
    raise KeyError(name)


def iter_programs(suite_name: str | None = None) -> Iterator[ConcurrentProgram]:
    entries = all_benchmarks() if suite_name is None else suite(suite_name)
    for b in entries:
        yield b.build()
